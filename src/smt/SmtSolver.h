//===- smt/SmtSolver.h - Eager-encoding SMT facade --------------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver the symbolic engine discharges verification conditions with —
/// the role Z3 / CVC3 play under Jahob (§1.4). The interface is Z3-flavored
/// (a context-owned expression factory, assert / check / model), and the
/// implementation is *eager*: theory semantics is compiled into
/// propositional bridge clauses before the CDCL search, UCLID-style:
///
///  * Equality over object terms: symmetry is handled by atom
///    canonicalization; transitivity over every term triple; congruence
///    for the uninterpreted query terms (map lookups, set membership).
///  * Linear integer atoms are canonicalized to `sum-of-symbols <=/= c`
///    form; atoms sharing a symbol part get ordering/exclusivity bridges.
///
/// SmtSession is the *incremental* interface: base formulas are asserted
/// (and Tseitin-encoded, with their bridge clauses) exactly once, and each
/// query is discharged under assumption literals on a warm SatSolver, so
/// Tseitin definitions, bridge clauses, and learned clauses are all
/// retained across the queries of one verification family. Bridges are
/// emitted incrementally: a new theory atom only generates the bridge
/// instances that mention it. All bookkeeping is insertion-ordered, so a
/// session's behavior is a function of the asserted formula sequence alone
/// — never of pointer values — which keeps multi-threaded driver runs
/// verdict-deterministic.
///
/// Scoped assertions live on a selector *tree* (catalog → family → pair →
/// method paths): each scope is guarded by a boolean selector, asserting
/// into a scope implies the whole selector path, and a scope may own a
/// Tseitin cache layer so its formulas' definition variables are private
/// to its subtree. retireScope() then retires a whole subtree in one
/// solver pass — selectors falsified, guarded and definition clauses
/// evicted, definition variable indices recycled — so both the clause
/// database *and the variable array* stay bounded by the live scope over
/// a catalog-length session. Atom variables and theory bridges stay
/// global: they are the shared lattice the long-lived tiers amortize.
///
/// SmtSolver is the original one-shot facade, now a thin wrapper that runs
/// each check() in a fresh session.
///
/// The encoding is complete for the fragment the symbolic engine emits
/// (see SymbolicEngine.h); on larger fragments it is conservative: check()
/// may report Sat with a spurious model, which the engine treats as a
/// failed proof — never as unsoundness.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SMT_SMTSOLVER_H
#define SEMCOMM_SMT_SMTSOLVER_H

#include "logic/ExprFactory.h"
#include "proof/ProofChecker.h"
#include "smt/PrefixImage.h"
#include "smt/SatSolver.h"
#include "smt/SessionAudit.h"
#include "smt/Tseitin.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace semcomm {

namespace detail {
/// Metadata for a canonicalized integer atom variable.
struct IntAtomInfo {
  std::string Signature; ///< Symbol part (canonical).
  bool IsEq = false;     ///< sum = C when true; sum <= C otherwise.
  int64_t C = 0;
};
} // namespace detail

/// An incremental eager SMT session over the logic's expressions: assert
/// base formulas once, then discharge many queries under assumptions
/// against the same warm CDCL solver.
class SmtSession {
public:
  /// A node in the session's selector tree. RootScope is the unguarded
  /// session base; every other scope is guarded by its selector and by
  /// all the selectors on its path to the root.
  using ScopeId = size_t;
  static constexpr ScopeId RootScope = 0;

  explicit SmtSession(ExprFactory &F);
  SmtSession(const SmtSession &) = delete;
  SmtSession &operator=(const SmtSession &) = delete;

  /// Conjoins \p E to the session permanently: it holds in every
  /// subsequent check().
  void assertBase(ExprRef E);

  /// Opens a scope guarded by \p Selector under \p Parent and returns its
  /// id. When \p OwnLayer is set the scope owns a Tseitin cache layer:
  /// definition variables created while asserting or checking in the
  /// scope are private to its subtree and are evicted and *recycled* when
  /// the scope retires (the family/catalog tiers give each pair and
  /// family scope its own layer; method scopes share their pair's, since
  /// they only ever retire together with it).
  ScopeId openScope(ExprRef Selector, ScopeId Parent = RootScope,
                    bool OwnLayer = false);

  /// Asserts `sel_1 -> (sel_2 -> ... -> Body)` over \p Scope's selector
  /// path permanently, attributing \p Body's atoms to the scope and its
  /// encoding to the scope's layer. A check() run with the scope's
  /// selector among its ActiveScopes reports countermodels over base +
  /// scope + query atoms — other scopes' atoms stay out of the
  /// diagnostics.
  void assertInScope(ScopeId Scope, ExprRef Body);

  /// Permanently retires \p Scope and its entire subtree in one solver
  /// pass: every subtree selector is forced false at root level, the
  /// subtree's guarded clauses, scope-touching learned clauses, and the
  /// definition clauses of its owned Tseitin layers are evicted, and the
  /// owned definition variables are recycled. Once retired, a selector
  /// can never be re-activated; callers that re-verify a retired scope
  /// must open a fresh one. Returns the number of clauses evicted.
  size_t retireScope(ScopeId Scope);

  /// Asserts `Selector -> Body`, auto-registering \p Selector as a root
  /// child (shared per-pair sessions assert every method's prefix this
  /// way; the selector shares the root Tseitin layer, preserving whole-
  /// session encoding reuse for tiers that never retire).
  void assertScoped(ExprRef Selector, ExprRef Body);

  /// Asserts `Outer -> (Selector -> Body)`, auto-registering \p Outer as
  /// a root child and \p Selector beneath it.
  void assertScopedUnder(ExprRef Outer, ExprRef Selector, ExprRef Body);

  /// Retires the scope registered for \p Selector (with its subtree).
  /// \p SubSelectors not already registered as descendants are falsified
  /// and swept along with it (legacy callers named nested selectors
  /// explicitly). Returns the number of clauses evicted.
  size_t retireScope(ExprRef Selector,
                     const std::vector<ExprRef> &SubSelectors = {});

  /// Decides base ∧ ⋀Assumed under a per-call conflict budget (negative =
  /// unlimited). The \p Assumed formulas hold for this call only; their
  /// Tseitin encodings, bridge clauses, and any learned clauses are
  /// retained for future calls. \p ActiveScope (a selector previously
  /// passed to assertScoped) widens the countermodel vocabulary to that
  /// scope's atoms.
  SatResult check(const std::vector<ExprRef> &Assumed,
                  int64_t MaxConflicts = -1, ExprRef ActiveScope = nullptr);

  /// As above, with several active scopes (a family session passes the
  /// pair selector and the method selector together).
  SatResult check(const std::vector<ExprRef> &Assumed, int64_t MaxConflicts,
                  const std::vector<ExprRef> &ActiveScopes);

  /// Runs check()'s encoding pipeline — normalization, bridge emission,
  /// scope-layer routing, Tseitin encoding — without the SAT search. The
  /// `semcommute-lint` replay drives sessions through this to audit the
  /// encoding discipline at static-analysis cost.
  void encodeForAudit(const std::vector<ExprRef> &Assumed,
                      const std::vector<ExprRef> &ActiveScopes);

  /// --- Bridge compaction (the warm-service unbounded-loop fix) ---------
  ///
  /// Routes subsequent bridge encodings into a dedicated root-child
  /// Tseitin layer and reference-counts every theory-registry entry by
  /// the scopes whose assertions or checks mention it (root-attributed
  /// entries are permanent). retireScope() then drops the dead subtree's
  /// ownership; entries attributed to a scope whose cache layer survives
  /// the subtree transfer to the layer's owning scope instead, so an atom
  /// is only ever released once no live cache layer can name its
  /// variable. Once at least max(MinDead, live/2) entries are dead,
  /// compactBridges() runs automatically. Must be called before the first
  /// assertion (the bridge layer has to see every bridge encoding).
  void enableBridgeCompaction(size_t MinDead = 64);
  bool bridgeCompactionEnabled() const { return BridgeCompactionEnabled; }
  /// Compacts the bridge lattice now (no-op unless enabled and entries
  /// have died): one retireScopes() pass evicts every bridge clause and
  /// every dead atom's clauses, recycles the dead variables (Delete/
  /// Recycle proof steps included, so --certify still checks), filters
  /// the registries to the survivors, and re-emits exactly the bridge
  /// set a fresh session would build over the live universe — sound and
  /// complete by fresh-session equivalence. Returns clauses evicted.
  size_t compactBridges();
  /// Disables the release of retired subtree selectors (reference runs
  /// for the compaction fuzz; eviction itself is unaffected). Selector
  /// release folds each retired scope's pinned-false selector off the
  /// trail and recycles its variable whenever the scope's cache layer
  /// dies with the retired subtree — the guarantee that no surviving
  /// clause or cache entry names it. Epoch-tagged selector naming keeps
  /// a released selector expression from ever being encoded again.
  void setSelectorRelease(bool Enabled) { SelectorRelease = Enabled; }
  bool selectorReleaseEnabled() const { return SelectorRelease; }
  /// Compaction statistics: compactions run, atom variables released to
  /// the recycler, retired selector variables released off the trail,
  /// bridge formulas currently asserted, and their high-water mark.
  int64_t bridgeCompactions() const { return BridgeCompactions; }
  int64_t releasedAtomVars() const { return ReleasedAtomVars; }
  int64_t releasedSelectors() const { return Sat.numReleasedSelectors(); }
  int64_t liveBridges() const { return LiveBridges; }
  int64_t peakLiveBridges() const { return PeakLiveBridges; }
  /// Restarts the live-var/clause/bridge high-water marks from the
  /// current live counts — the service loop's pass-boundary hook, so the
  /// steady-state plateau is observable per pass.
  void resetPeakStats() {
    Sat.resetPeakStats();
    PeakLiveBridges = LiveBridges;
  }

  /// --- Cross-shard prefix sharing --------------------------------------
  ///
  /// Captures the session's entire root-level state — propositional
  /// database, Tseitin caches, theory registries, bridge watermarks — as a
  /// read-only PrefixImage. Preconditions: no checks run and no scopes
  /// opened yet (the catalog-common prefix has just been asserted, bridges
  /// included), and nothing learned. The image holds ExprRefs, so it may
  /// only be imported into sessions sharing this session's ExprFactory;
  /// its serialize() text is byte-identical across runs for the same
  /// asserted-formula sequence.
  PrefixImage exportPrefix();
  /// Loads \p Img instead of re-encoding the prefix: replays the
  /// propositional database through addVar()/addClause() (so a certifying
  /// importer's trace still covers every stored clause), installs the
  /// Tseitin caches and theory registries, and sets the bridge watermarks
  /// so no duplicate bridge is ever emitted. Must be the fresh session's
  /// first operation, after enableCertification()/enableBridgeCompaction()
  /// — and the compaction flag must match the exporting session's. Under
  /// compaction every imported registry entry is root-owned: prefix atoms
  /// are permanent, so their variables are never recycled — the invariant
  /// the learned-clause exchange's ownership rule rides on.
  void importPrefix(const PrefixImage &Img);
  /// Variables covered by the exported/imported prefix (0 when neither
  /// ran) — the ownership bound for the learned-clause exchange.
  int prefixVars() const { return PrefixVars; }
  /// Shareable root-level learned clauses: every variable prefix-owned,
  /// size/glue-capped (see SatSolver::exportLearnedClauses).
  std::vector<PrefixClause> exportLearnedPrefixClauses(size_t MaxSize,
                                                       int MaxGlue) const;
  /// Adopts foreign learned clauses after validating variable ownership
  /// (all indices within the shared prefix and live). Returns the number
  /// adopted. Not legal on a certifying session — a foreign clause has no
  /// local derivation for the trace.
  size_t importLearnedPrefixClauses(const std::vector<PrefixClause> &In);

  /// --- Certification (proof logging + independent checking) -----------
  ///
  /// Turns on DRAT-style proof logging. Must be called before the first
  /// assertion or check: the trace has to see every stored clause, or the
  /// checker would reject honest deletions. Each Unsat check() logs one
  /// Query step carrying the current proof tag and the minimized core.
  void enableCertification();
  bool certifying() const { return ProofLog != nullptr; }
  /// Tag stamped onto subsequently certified verdicts (the selector path
  /// of the verification condition being discharged).
  void setProofTag(const std::string &T) {
    if (ProofLog)
      ProofLog->setTag(T);
  }
  /// Replays the accumulated trace through the independent proof::
  /// ProofChecker and caches the outcome. Idempotent; cheap when
  /// certification was never enabled (returns an unchecked summary).
  const proof::CertifySummary &finishCertification();
  /// The live trace (null unless certifying) — exposed for the rejection
  /// tests, which mutate serialized copies.
  proof::ProofTrace *proofTrace() { return ProofLog.get(); }

  /// Attaches a discipline event log (scope/assert/check/retire plus the
  /// encoder's layer events) for the lint replay. Not owned.
  void setAuditLog(audit::Log *L) {
    Audit = L;
    Encoder.setAuditLog(L);
  }

  /// After an Unsat check(), iterate solve(unsatCore()) until the core
  /// stops shrinking (or \p MaxRounds re-solves ran) before recording the
  /// core, so CoreLabels name a locally minimal assumption set — the
  /// §5.2.1 minimization signal. 0 disables the extra solves. The default
  /// is a small bound: each round is cheap (the refutation's lemmas are
  /// already learned), and the fixpoint is usually reached in one.
  void setCoreMinimizationRounds(unsigned N) { CoreMinRounds = N; }
  /// Extra solves the minimization ran (statistics).
  int64_t coreMinimizationSolves() const { return CoreMinSolves; }

  /// SAT statistics of the last check() (per-call deltas).
  int64_t conflicts() const { return LastConflicts; }
  int64_t decisions() const { return LastDecisions; }
  /// Cumulative statistics across the whole session.
  int64_t totalConflicts() const { return Sat.numConflicts(); }
  size_t numChecks() const { return Checks; }
  /// Clauses retained in the warm solver (Tseitin definitions, bridges,
  /// learned clauses) that later checks reuse instead of re-deriving.
  size_t retainedClauses() const { return Sat.numClauses(); }
  int64_t learnedClauses() const { return Sat.numLearnedClauses(); }
  /// Learned-clause-database reductions the warm solver ran, and the total
  /// clauses they reclaimed (long-lived shared sessions rely on this GC).
  int64_t dbReductions() const { return Sat.numDbReductions(); }
  int64_t reclaimedClauses() const { return Sat.numReclaimedClauses(); }
  /// Scope retirements served and the clauses they evicted (family-level
  /// sessions retire each finished pair's scope).
  int64_t scopeRetirements() const { return Sat.numScopeRetirements(); }
  int64_t evictedClauses() const { return Sat.numEvictedClauses(); }
  /// Variable recycling and liveness accounting (catalog-session stats):
  /// indices recycled by scope retirements, vars currently live, the
  /// live-var and clause-count high-water marks, and the cumulative
  /// variable demand (what the allocation would be without recycling).
  int64_t recycledVars() const { return Sat.numRecycledVars(); }
  int liveVars() const { return Sat.numLiveVars(); }
  int peakLiveVars() const { return Sat.peakLiveVars(); }
  size_t peakClauses() const { return Sat.peakClauses(); }
  int64_t varRequests() const { return Sat.numVarRequests(); }
  int numAtoms() const { return static_cast<int>(Encoder.atoms().size()); }

  /// The underlying CDCL solver, exposed for clause-GC configuration
  /// (benches pin the no-GC baseline; tests force aggressive reduction).
  SatSolver &solver() { return Sat; }

  /// After a Sat check(): the atoms assigned true, for countermodel
  /// diagnostics (sorted by printed form; deterministic across runs).
  const std::vector<std::string> &modelAtoms() const { return LastModel; }

  /// After an Unsat check(): indices into the check's Assumed vector of the
  /// assumptions the refutation actually used (the solver's unsat core
  /// mapped back to formulas). Empty when the base alone is contradictory.
  const std::vector<size_t> &lastCoreAssumptionIndices() const {
    return LastCoreIdx;
  }

private:
  /// One node of the selector tree.
  struct ScopeNode {
    ExprRef Selector = nullptr; ///< Null for the root.
    ScopeId Parent = RootScope;
    std::vector<ScopeId> Children;
    Tseitin::LayerId Layer = Tseitin::RootLayer;
    bool OwnsLayer = false;
    bool Alive = true;
  };

  ExprRef normalize(ExprRef E);
  ExprRef normalizeAtom(ExprRef E);
  ExprRef canonicalIntAtom(ExprKind K, ExprRef A, ExprRef B);
  ExprRef eqObj(ExprRef A, ExprRef B);

  /// The registered scope of \p Selector, opening one under \p Parent
  /// (sharing the parent layer) if none exists.
  ScopeId ensureScope(ExprRef Selector, ScopeId Parent);
  /// Deepest registered scope among \p ActiveScopes (its layer hosts the
  /// query encodings), or RootScope.
  ScopeId innermostScope(const std::vector<ExprRef> &ActiveScopes) const;

  /// Registers the theory atoms of a normalized formula and asserts the
  /// bridge instances that mention at least one newly seen atom. Bridges
  /// always encode into the root layer: they constrain global atoms and
  /// outlive every scope.
  void ingest(ExprRef Normalized);
  void collectTheoryAtoms(ExprRef E);
  void emitNewBridges();
  /// Attributes registry entry \p E to the current AttrScope (bridge
  /// compaction only; every mention re-attributes, so a dead entry a new
  /// scope mentions is revived before compaction can touch it).
  void recordOwner(ExprRef E);
  /// The scope owning \p S's cache layer: \p S itself or the nearest
  /// ancestor that pushed the layer (RootScope for the root layer).
  ScopeId layerOwnerScope(ScopeId S) const;
  /// Collects the boolean atoms (non-propositional leaves) of a normalized
  /// formula — the vocabulary a countermodel should be reported over.
  /// \p Visited memoizes over the hash-consed DAG (connective nodes are
  /// not in \p Out, so Out alone cannot stop re-traversal).
  static void collectBoolAtoms(ExprRef E, std::set<ExprRef> &Out,
                               std::set<ExprRef> &Visited);

  ExprFactory &F;
  SatSolver Sat;
  Tseitin Encoder;

  // Theory atom registries. Vectors preserve discovery order (the bridge
  // emission order must not depend on pointer values); sets dedup.
  std::vector<ExprRef> ObjTerms;
  std::set<ExprRef> ObjTermSet;
  std::vector<ExprRef> MapLookups;
  std::vector<ExprRef> MemAtoms;
  std::set<ExprRef> MemAtomSet;
  std::vector<std::pair<ExprRef, detail::IntAtomInfo>> IntAtoms;
  std::set<ExprRef> IntAtomSeen;

  /// Atoms of the base formulas: a failing check's countermodel is
  /// reported over base + active-scope + current-query atoms only, not
  /// over every atom the warm session has accumulated from earlier,
  /// unrelated queries or other selector scopes.
  std::set<ExprRef> BaseAtoms;
  std::map<ExprRef, std::set<ExprRef>> ScopedAtoms; ///< Keyed by selector.

  /// The selector tree (node 0 is the root). Nodes are never erased, only
  /// marked dead, so ScopeIds stay stable for the session's lifetime.
  std::vector<ScopeNode> Scopes;
  std::map<ExprRef, ScopeId> ScopeOf; ///< Live selectors only.

  // High-water marks of the atoms already covered by emitted bridges.
  size_t BridgedObjTerms = 0;
  size_t BridgedMapLookups = 0;
  size_t BridgedMemAtoms = 0;
  size_t BridgedIntAtoms = 0;

  // Bridge-compaction state (inert unless enableBridgeCompaction ran).
  bool BridgeCompactionEnabled = false;
  bool SelectorRelease = true;
  size_t BridgeMinDead = 64;
  /// Dedicated root-child layer hosting every bridge encoding while
  /// compaction is enabled; replaced wholesale at each compaction.
  Tseitin::LayerId BridgeLayer = Tseitin::RootLayer;
  /// Scope the current assert/check attributes theory atoms to.
  ScopeId AttrScope = RootScope;
  std::map<ExprRef, std::set<ScopeId>> EntryOwners;
  std::map<ScopeId, std::vector<ExprRef>> ScopeEntries;
  /// Registry entries whose every owner died (cleared at compaction; an
  /// entry re-mentioned by a live scope is revived out of this set).
  std::set<ExprRef> DeadEntries;
  int64_t BridgeCompactions = 0;
  int64_t ReleasedAtomVars = 0;
  int64_t LiveBridges = 0;
  int64_t PeakLiveBridges = 0;

  std::unique_ptr<proof::ProofTrace> ProofLog; ///< Null unless certifying.
  proof::CertifySummary Cert;
  bool CertFinished = false;
  audit::Log *Audit = nullptr; ///< Optional discipline event log.

  /// Variable count of the exported/imported prefix image (0 = no prefix
  /// sharing); the first PrefixVars indices are root-owned in every shard
  /// that loaded the same image.
  int PrefixVars = 0;

  size_t Checks = 0;
  int64_t LastConflicts = 0;
  int64_t LastDecisions = 0;
  unsigned CoreMinRounds = 4;
  int64_t CoreMinSolves = 0;
  std::vector<std::string> LastModel;
  std::vector<size_t> LastCoreIdx;
};

/// One-shot eager SMT checker: the historical facade, each check() running
/// in a fresh SmtSession. Kept for callers that decide a single formula
/// set (and as the cold-start baseline the incremental benches compare
/// against).
class SmtSolver {
public:
  explicit SmtSolver(ExprFactory &F) : F(F) {}

  /// Conjoins \p E to the context.
  void assertFormula(ExprRef E);

  /// Decides the asserted conjunction under a conflict budget
  /// (negative = unlimited). Unknown means the budget ran out.
  SatResult check(int64_t MaxConflicts = -1);

  /// SAT statistics of the last check().
  int64_t conflicts() const { return LastConflicts; }
  int64_t decisions() const { return LastDecisions; }
  int numAtoms() const { return LastNumAtoms; }

  /// After a Sat check(): the atoms assigned true, for countermodel
  /// diagnostics.
  const std::vector<std::string> &modelAtoms() const { return LastModel; }

private:
  ExprFactory &F;
  std::vector<ExprRef> Asserted;
  int64_t LastConflicts = 0;
  int64_t LastDecisions = 0;
  int LastNumAtoms = 0;
  std::vector<std::string> LastModel;
};

} // namespace semcomm

#endif // SEMCOMM_SMT_SMTSOLVER_H
