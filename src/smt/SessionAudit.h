//===- smt/SessionAudit.h - Session discipline event log --------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A passive event log of everything a session does that the scope/hoist
/// discipline constrains: scope openings, scoped assertions, checks,
/// retirements, Tseitin layer pushes/drops, definition creations, and
/// cross-layer definition references. SmtSession and Tseitin record into
/// it when a log is attached (never otherwise — recording is off the hot
/// path by default); the `semcommute-lint` analyzer replays the stream and
/// flags violations (a definition referenced from a sibling layer, a
/// selector reused after retirement, ...). Pure data — this header has no
/// dependencies so the lint library can consume it without linking the
/// solver.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SMT_SESSIONAUDIT_H
#define SEMCOMM_SMT_SESSIONAUDIT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace semcomm {
namespace audit {

enum class EventKind : uint8_t {
  OpenScope,  ///< A selector began guarding a live scope.
  Assert,     ///< A formula was asserted into a scope.
  Check,      ///< A query ran with a set of active scopes.
  Retire,     ///< A scope (with its subtree) was permanently retired.
  PushLayer,  ///< A Tseitin cache layer was created under a parent.
  DropLayer,  ///< A Tseitin cache layer was evicted.
  Define,     ///< A fresh definition variable was created in a layer.
  Reference,  ///< A cached definition was found in \c Layer while
              ///< \c ActiveLayer was active (legal only on the ancestor
              ///< chain).
};

struct Event {
  EventKind Kind;
  /// OpenScope/Assert/Retire: the scope's selector (printed form).
  std::string Scope;
  /// Check: the active scopes' selectors (printed form).
  std::vector<std::string> Scopes;
  /// PushLayer/DropLayer/Define/Reference: the subject layer.
  unsigned Layer = 0;
  /// Reference: the layer active at lookup time. PushLayer: the parent.
  unsigned ActiveLayer = 0;
};

/// The recording surface. Attach one to an SmtSession (setAuditLog) before
/// driving it; the lint fixtures also construct streams by hand.
struct Log {
  std::vector<Event> Events;

  void openScope(std::string Sel) {
    Events.push_back({EventKind::OpenScope, std::move(Sel), {}, 0, 0});
  }
  void assertInScope(std::string Sel) {
    Events.push_back({EventKind::Assert, std::move(Sel), {}, 0, 0});
  }
  void check(std::vector<std::string> Sels) {
    Events.push_back({EventKind::Check, {}, std::move(Sels), 0, 0});
  }
  void retire(std::string Sel) {
    Events.push_back({EventKind::Retire, std::move(Sel), {}, 0, 0});
  }
  void pushLayer(unsigned Layer, unsigned Parent) {
    Events.push_back({EventKind::PushLayer, {}, {}, Layer, Parent});
  }
  void dropLayer(unsigned Layer) {
    Events.push_back({EventKind::DropLayer, {}, {}, Layer, 0});
  }
  void define(unsigned Layer) {
    Events.push_back({EventKind::Define, {}, {}, Layer, 0});
  }
  void reference(unsigned FoundLayer, unsigned ActiveLayer) {
    Events.push_back(
        {EventKind::Reference, {}, {}, FoundLayer, ActiveLayer});
  }
};

} // namespace audit
} // namespace semcomm

#endif // SEMCOMM_SMT_SESSIONAUDIT_H
