//===- smt/PrefixImage.cpp - Pre-encoded catalog prefix image ----------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "smt/PrefixImage.h"

#include "logic/Printer.h"

#include <string>

using namespace semcomm;

namespace {

void appendInts(std::string &Out, const char *Tag,
                const std::vector<int> &Vals) {
  Out += Tag;
  Out += ' ';
  Out += std::to_string(Vals.size());
  for (int V : Vals) {
    Out += ' ';
    Out += std::to_string(V);
  }
  Out += '\n';
}

void appendExprInts(std::string &Out, const char *Tag, char Row,
                    const std::vector<std::pair<ExprRef, int>> &Entries) {
  Out += Tag;
  Out += ' ';
  Out += std::to_string(Entries.size());
  Out += '\n';
  for (const auto &[E, V] : Entries) {
    Out += Row;
    Out += ' ';
    Out += std::to_string(V);
    Out += ' ';
    Out += printAbstract(E);
    Out += '\n';
  }
}

void appendExprs(std::string &Out, const char *Tag, char Row,
                 const std::vector<ExprRef> &Entries) {
  Out += Tag;
  Out += ' ';
  Out += std::to_string(Entries.size());
  Out += '\n';
  for (ExprRef E : Entries) {
    Out += Row;
    Out += ' ';
    Out += printAbstract(E);
    Out += '\n';
  }
}

} // namespace

std::string PrefixImage::serialize() const {
  std::string Out;
  Out += "semcommute-prefix-image 1\n";
  Out += "vars " + std::to_string(NumVars) + "\n";
  Out += "clauses " + std::to_string(Clauses.size()) + "\n";
  for (const std::vector<int> &C : Clauses)
    appendInts(Out, "c", C);
  appendInts(Out, "units", Units);
  appendExprInts(Out, "atoms", 'a', Atoms);
  appendExprInts(Out, "rootdefs", 'd', RootDefs);
  appendInts(Out, "rootowned", RootOwned);
  Out += "bridgelayer " + std::to_string(HasBridgeLayer ? 1 : 0) + "\n";
  appendExprInts(Out, "bridgedefs", 'd', BridgeDefs);
  appendInts(Out, "bridgeowned", BridgeOwned);
  appendExprs(Out, "objterms", 't', ObjTerms);
  appendExprs(Out, "mematoms", 'm', MemAtoms);
  Out += "intatoms " + std::to_string(IntAtoms.size()) + "\n";
  for (const IntAtomEntry &A : IntAtoms) {
    Out += "i ";
    Out += A.IsEq ? '1' : '0';
    Out += ' ';
    Out += std::to_string(A.C);
    Out += '\t';
    Out += A.Signature;
    Out += '\t';
    Out += printAbstract(A.Atom);
    Out += '\n';
  }
  appendExprs(Out, "baseatoms", 'b', BaseAtoms);
  Out += "livebridges " + std::to_string(LiveBridges) + "\n";
  return Out;
}
