//===- smt/SatSolver.cpp - CDCL propositional solver ------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "smt/SatSolver.h"

#include <algorithm>
#include <cassert>

using namespace semcomm;

namespace {
/// The proof trace speaks signed DIMACS ints; Lit::Encoded already is one.
std::vector<int> proofLits(const std::vector<Lit> &C) {
  std::vector<int> Out;
  Out.reserve(C.size());
  for (Lit L : C)
    Out.push_back(L.Encoded);
  return Out;
}
} // namespace

void SatSolver::logQueryProof(const std::vector<Lit> &Core) {
  if (Proof)
    Proof->addQuery(proofLits(Core), Clauses.size());
}

SatSolver::SatSolver() {
  // Var indices are 1-based; slot 0 is a sentinel.
  Assign.push_back(Undef);
  Level.push_back(0);
  Reason.push_back(-1);
  Activity.push_back(0.0);
  SavedPhase.push_back(0);
  IsFree.push_back(0);
  Watches.resize(2);
}

int SatSolver::addVar() {
  ++VarRequests;
  if (!FreeVars.empty()) {
    // Reuse a retired index. Its state was reset at retirement, but a
    // decision taken on a then-free var (possible: free vars are
    // unconstrained) could have re-dirtied the saved phase, so reset
    // defensively here too.
    int V = FreeVars.back();
    FreeVars.pop_back();
    IsFree[static_cast<size_t>(V)] = 0;
    assert(Assign[static_cast<size_t>(V)] == Undef &&
           "recycled a var still assigned");
    Activity[static_cast<size_t>(V)] = 0.0;
    SavedPhase[static_cast<size_t>(V)] = 0;
    Reason[static_cast<size_t>(V)] = -1;
    assert(varStateIsClean(V) && "recycled var carries stale state");
    if (numLiveVars() > PeakLiveVars)
      PeakLiveVars = numLiveVars();
    return V;
  }
  Assign.push_back(Undef);
  Level.push_back(0);
  Reason.push_back(-1);
  Activity.push_back(0.0);
  SavedPhase.push_back(0);
  IsFree.push_back(0);
  Watches.resize(Watches.size() + 2);
  if (numLiveVars() > PeakLiveVars)
    PeakLiveVars = numLiveVars();
  return numVars();
}

void SatSolver::attach(int ClauseIdx) {
  const Clause &C = Clauses[ClauseIdx];
  assert(C.Lits.size() >= 2 && "attach needs a watchable clause");
  Watches[watchIndex(C.Lits[0].negated())].push_back({ClauseIdx});
  Watches[watchIndex(C.Lits[1].negated())].push_back({ClauseIdx});
}

void SatSolver::addClause(const std::vector<Lit> &Input) {
  if (Unsatisfiable)
    return;

  // Normalize: drop duplicate literals and satisfied-at-root clauses.
  std::vector<Lit> C;
  for (Lit L : Input) {
    if (valueOf(L) == 1 && Level[L.var()] == 0)
      return; // Already true at root level.
    if (valueOf(L) == 0 && Level[L.var()] == 0)
      continue; // False at root; drop the literal.
    if (std::find(C.begin(), C.end(), L) != C.end())
      continue;
    if (std::find(C.begin(), C.end(), L.negated()) != C.end())
      return; // Tautology.
    C.push_back(L);
  }

  // Proof logging happens *after* normalization: the trace's Input clauses
  // are exactly the clauses the solver stores (or pins on the trail), so
  // later Delete records match; the normalization itself joins the trust
  // base, as the CNF stream does in standard DRAT checking.
  if (C.empty()) {
    if (Proof)
      Proof->addInput({});
    Unsatisfiable = true;
    return;
  }
  if (C.size() == 1) {
    if (Proof)
      Proof->addInput({C[0].Encoded});
    if (valueOf(C[0]) == 0) {
      Unsatisfiable = true;
      return;
    }
    if (valueOf(C[0]) == Undef)
      enqueue(C[0], -1);
    if (propagate() != -1)
      Unsatisfiable = true;
    return;
  }
  if (Proof)
    Proof->addInput(proofLits(C));

  Clauses.push_back({std::move(C), false, 0, 0.0});
  attach(static_cast<int>(Clauses.size()) - 1);
  if (Clauses.size() > PeakClauses)
    PeakClauses = Clauses.size();
}

void SatSolver::enqueue(Lit L, int ReasonIdx) {
  assert(valueOf(L) == Undef && "enqueue of an assigned literal");
  Assign[L.var()] = L.positive() ? 1 : 0;
  Level[L.var()] = currentLevel();
  Reason[L.var()] = ReasonIdx;
  Trail.push_back(L);
}

int SatSolver::propagate() {
  while (PropHead < Trail.size()) {
    Lit P = Trail[PropHead++];
    std::vector<Watcher> &Ws = Watches[watchIndex(P)];
    size_t Keep = 0;
    for (size_t I = 0; I != Ws.size(); ++I) {
      int CI = Ws[I].ClauseIdx;
      Clause &C = Clauses[CI];
      // Ensure the falsified literal sits in slot 1.
      Lit NotP = P.negated();
      if (C.Lits[0] == NotP)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == NotP && "watch list out of sync");

      if (valueOf(C.Lits[0]) == 1) {
        Ws[Keep++] = Ws[I]; // Clause already satisfied; keep the watch.
        continue;
      }
      // Look for a replacement watch.
      bool Moved = false;
      for (size_t K = 2; K != C.Lits.size(); ++K)
        if (valueOf(C.Lits[K]) != 0) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[watchIndex(C.Lits[1].negated())].push_back({CI});
          Moved = true;
          break;
        }
      if (Moved)
        continue;

      // No replacement: clause is unit or conflicting.
      Ws[Keep++] = Ws[I];
      if (valueOf(C.Lits[0]) == 0) {
        // Conflict: restore the untouched suffix of the watch list.
        for (size_t K = I + 1; K != Ws.size(); ++K)
          Ws[Keep++] = Ws[K];
        Ws.resize(Keep);
        return CI;
      }
      enqueue(C.Lits[0], CI);
    }
    Ws.resize(Keep);
  }
  return -1;
}

void SatSolver::bumpActivity(int Var) {
  Activity[Var] += ActivityInc;
  if (Activity[Var] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
}

void SatSolver::bumpClauseActivity(int ClauseIdx) {
  Clause &C = Clauses[ClauseIdx];
  C.Act += ClauseActInc;
  if (C.Act > 1e100) {
    for (Clause &D : Clauses)
      D.Act *= 1e-100;
    ClauseActInc *= 1e-100;
  }
}

void SatSolver::analyze(int ConflictIdx, std::vector<Lit> &Learned,
                        int &BackLevel, int &Glue) {
  // Standard first-UIP resolution walk over the trail.
  Learned.clear();
  Learned.push_back(Lit()); // Slot for the asserting literal.
  std::vector<bool> SeenVar(Assign.size(), false);
  int Counter = 0;
  Lit P;
  bool HaveP = false;
  size_t TrailIdx = Trail.size();
  int CI = ConflictIdx;

  do {
    assert(CI != -1 && "analysis walked past a decision");
    if (Clauses[CI].Learned)
      bumpClauseActivity(CI); // A lemma useful in analysis is worth keeping.
    const Clause &C = Clauses[CI];
    for (size_t I = (HaveP ? 1 : 0); I != C.Lits.size(); ++I) {
      Lit Q = C.Lits[I];
      if (HaveP && Q == P)
        continue;
      int V = Q.var();
      if (SeenVar[V] || Level[V] == 0)
        continue;
      SeenVar[V] = true;
      bumpActivity(V);
      if (Level[V] == currentLevel())
        ++Counter;
      else
        Learned.push_back(Q);
    }
    // Pick the next trail literal to resolve on.
    while (!SeenVar[Trail[TrailIdx - 1].var()])
      --TrailIdx;
    --TrailIdx;
    P = Trail[TrailIdx];
    HaveP = true;
    SeenVar[P.var()] = false;
    CI = Reason[P.var()];
    --Counter;
  } while (Counter > 0);
  Learned[0] = P.negated();

  // Backjump level: the second-highest level in the learned clause.
  BackLevel = 0;
  size_t MaxIdx = 1;
  for (size_t I = 1; I < Learned.size(); ++I)
    if (Level[Learned[I].var()] > BackLevel) {
      BackLevel = Level[Learned[I].var()];
      MaxIdx = I;
    }
  if (Learned.size() > 1)
    std::swap(Learned[1], Learned[MaxIdx]);

  // Glue (LBD): distinct decision levels in the learned clause. Low-glue
  // clauses connect few levels and tend to stay useful, so reduceDb()
  // protects them. Counted with a generation-stamped scratch buffer so the
  // conflict hot loop never allocates.
  if (GlueStamp.size() <= static_cast<size_t>(currentLevel()))
    GlueStamp.resize(static_cast<size_t>(currentLevel()) + 1, 0);
  ++GlueStampGen;
  GlueStamp[static_cast<size_t>(currentLevel())] = GlueStampGen;
  Glue = 1;
  for (size_t I = 1; I < Learned.size(); ++I) {
    int64_t &Stamp = GlueStamp[static_cast<size_t>(Level[Learned[I].var()])];
    if (Stamp != GlueStampGen) {
      Stamp = GlueStampGen;
      ++Glue;
    }
  }
}

void SatSolver::backtrack(int ToLevel) {
  if (currentLevel() <= ToLevel)
    return;
  size_t Bound = TrailLim[ToLevel];
  for (size_t I = Trail.size(); I != Bound; --I) {
    int V = Trail[I - 1].var();
    SavedPhase[V] = Assign[V]; // Phase saving: remember the last value.
    Assign[V] = Undef;
    Reason[V] = -1;
  }
  Trail.resize(Bound);
  TrailLim.resize(ToLevel);
  PropHead = Bound;
}

int SatSolver::pickBranchVar() {
  // Free-listed vars are unconstrained and awaiting reuse: deciding on
  // them would only pad the trail (and dirty their saved phase).
  int Best = 0;
  double BestAct = -1.0;
  for (int V = 1; V <= numVars(); ++V)
    if (Assign[V] == Undef && !IsFree[static_cast<size_t>(V)] &&
        Activity[V] > BestAct) {
      Best = V;
      BestAct = Activity[V];
    }
  return Best;
}

void SatSolver::analyzeFinal(Lit Failed) {
  // The conjunction of assumptions on the trail that (with the clause
  // database) falsifies \p Failed: walk the implication graph backwards
  // from ~Failed; every decision reached is an assumption (assumptions are
  // the only decisions while they are being placed).
  AssumpCore.clear();
  AssumpCore.push_back(Failed);
  if (currentLevel() == 0)
    return;
  std::vector<bool> SeenVar(Assign.size(), false);
  SeenVar[Failed.var()] = true;
  for (size_t I = Trail.size(); I > static_cast<size_t>(TrailLim[0]); --I) {
    int V = Trail[I - 1].var();
    if (!SeenVar[V])
      continue;
    if (Reason[V] == -1) {
      // A decision reached from the failed assumption is itself an
      // assumption (possibly Failed's own negation, when the assumption
      // list is directly contradictory).
      AssumpCore.push_back(Trail[I - 1]);
    } else {
      for (Lit Q : Clauses[Reason[V]].Lits)
        if (Level[Q.var()] > 0)
          SeenVar[Q.var()] = true;
    }
    SeenVar[V] = false;
  }
}

SatResult SatSolver::solve(const std::vector<Lit> &Assumptions,
                           int64_t MaxConflicts) {
  if (&Assumptions == &AssumpCore) {
    // solve(unsatCore()) is a natural idiom; don't let the clear() below
    // empty the caller's assumption set.
    std::vector<Lit> Copy = Assumptions;
    return solve(Copy, MaxConflicts);
  }
  AssumpCore.clear();
  backtrack(0);
  if (Unsatisfiable)
    return SatResult::Unsat;
  if (propagate() != -1) {
    Unsatisfiable = true;
    return SatResult::Unsat;
  }
  maybeReduceDb();

  int64_t StartConflicts = Conflicts;
  int64_t RestartLimit = 64;
  int64_t SinceRestart = 0;

  while (true) {
    int ConflictIdx = propagate();
    if (ConflictIdx != -1) {
      ++Conflicts;
      ++SinceRestart;
      if (currentLevel() == 0) {
        Unsatisfiable = true;
        return SatResult::Unsat;
      }
      if (MaxConflicts >= 0 && Conflicts - StartConflicts > MaxConflicts) {
        backtrack(0);
        return SatResult::Unknown;
      }

      std::vector<Lit> Learned;
      int BackLevel = 0, Glue = 0;
      analyze(ConflictIdx, Learned, BackLevel, Glue);
      backtrack(BackLevel);
      if (Proof)
        Proof->addDerive(proofLits(Learned));
      if (Learned.size() == 1) {
        // Asserting unit: analyze() computed BackLevel 0, so the trail is
        // already at the root and the unit survives every future solve.
        assert(currentLevel() == 0 && "unit learned above the root");
        enqueue(Learned[0], -1);
      } else {
        Clauses.push_back({Learned, true, Glue, ClauseActInc});
        ++LearnedClauses;
        ++LearnedAlive;
        if (Clauses.size() > PeakClauses)
          PeakClauses = Clauses.size();
        int CI = static_cast<int>(Clauses.size()) - 1;
        attach(CI);
        enqueue(Learned[0], CI);
      }
      ActivityInc *= 1.05;
      ClauseActInc *= 1.001;
      continue;
    }

    if (SinceRestart >= RestartLimit) {
      SinceRestart = 0;
      RestartLimit = RestartLimit + RestartLimit / 2;
      backtrack(0);
      // Restarts are the in-search root points where the learned database
      // can be safely compacted.
      maybeReduceDb();
      continue;
    }

    if (currentLevel() < static_cast<int>(Assumptions.size())) {
      // Place the next assumption as a pseudo-decision.
      Lit P = Assumptions[currentLevel()];
      if (valueOf(P) == 0) {
        analyzeFinal(P);
        backtrack(0);
        return SatResult::Unsat;
      }
      TrailLim.push_back(static_cast<int>(Trail.size()));
      if (valueOf(P) == Undef)
        enqueue(P, -1);
      continue;
    }

    int V = pickBranchVar();
    if (V == 0) {
      // Full assignment, no conflict: snapshot the model, then leave the
      // trail at the root so the solver is immediately reusable.
      ModelVals = Assign;
      backtrack(0);
      return SatResult::Sat;
    }
    ++Decisions;
    TrailLim.push_back(static_cast<int>(Trail.size()));
    // Saved-phase polarity (negative-first for never-assigned variables).
    enqueue(Lit(V, SavedPhase[V] == 1), -1);
  }
}

bool SatSolver::modelValue(int Var) const {
  assert(Var >= 1 && Var <= numVars() && "model query out of range");
  assert(static_cast<size_t>(Var) < ModelVals.size() &&
         "no model saved for this variable");
  return ModelVals[Var] == 1;
}

void SatSolver::maybeReduceDb() {
  if (GcEnabled && LearnedAlive >= ReduceLimit) {
    reduceDb();
    ReduceLimit += ReduceLimit / 2;
  }
}

size_t SatSolver::reduceDb() {
  // Root level only: at the root the database is fully propagated, so every
  // clause is either root-satisfied or has at least two non-false literals —
  // which is exactly what rebuilding the watch lists below relies on.
  assert(currentLevel() == 0 && "reduceDb is a root-level operation");
  if (Unsatisfiable || Clauses.empty())
    return 0;

  // Clauses currently serving as the reason of an implied literal must
  // survive (conflict analysis walks Reason indices through them).
  std::vector<bool> IsReason(Clauses.size(), false);
  for (Lit L : Trail)
    if (Reason[L.var()] >= 0)
      IsReason[static_cast<size_t>(Reason[L.var()])] = true;

  // Deletion candidates: learned, not a reason, not binary, not low-glue.
  std::vector<int> Candidates;
  for (size_t I = 0; I != Clauses.size(); ++I) {
    const Clause &C = Clauses[I];
    if (C.Learned && !IsReason[I] && C.Lits.size() > 2 && C.Glue > 2)
      Candidates.push_back(static_cast<int>(I));
  }
  size_t Target = Candidates.size() / 2;
  if (Target == 0)
    return 0;

  // Drop the least active half (stable sort: equal activities drop the
  // older clause first; fully deterministic).
  std::stable_sort(Candidates.begin(), Candidates.end(),
                   [this](int A, int B) {
                     return Clauses[static_cast<size_t>(A)].Act <
                            Clauses[static_cast<size_t>(B)].Act;
                   });
  std::vector<bool> Remove(Clauses.size(), false);
  for (size_t I = 0; I != Target; ++I)
    Remove[static_cast<size_t>(Candidates[I])] = true;
  if (Proof)
    for (size_t I = 0; I != Target; ++I)
      Proof->addDelete(
          proofLits(Clauses[static_cast<size_t>(Candidates[I])].Lits));
  compactClauses(Remove);

  LearnedAlive -= static_cast<int64_t>(Target);
  ReclaimedClauses += static_cast<int64_t>(Target);
  ++DbReductions;
  assert(reasonInvariantHolds() && "reduceDb broke a reason reference");
  return Target;
}

void SatSolver::compactClauses(const std::vector<bool> &Remove) {
  // Compact the clause vector, remembering where survivors moved.
  std::vector<int> NewIdx(Clauses.size(), -1);
  size_t Out = 0;
  for (size_t I = 0; I != Clauses.size(); ++I) {
    if (Remove[I])
      continue;
    NewIdx[I] = static_cast<int>(Out);
    if (Out != I)
      Clauses[Out] = std::move(Clauses[I]);
    ++Out;
  }
  Clauses.resize(Out);

  // Remap the reasons of implied root literals (callers either protect
  // reason clauses from removal or detach the reasons first).
  for (Lit L : Trail) {
    int &R = Reason[L.var()];
    if (R >= 0) {
      assert(NewIdx[static_cast<size_t>(R)] >= 0 && "reason clause dropped");
      R = NewIdx[static_cast<size_t>(R)];
    }
  }

  // Rebuild every watch list. Watches must sit on non-false literals (or a
  // root-true one when the clause is root-satisfied with a single non-false
  // literal) so unit propagation stays complete.
  for (std::vector<Watcher> &W : Watches)
    W.clear();
  for (size_t I = 0; I != Clauses.size(); ++I) {
    Clause &C = Clauses[I];
    size_t Pos = 0;
    for (size_t K = 0; K != C.Lits.size() && Pos < 2; ++K)
      if (valueOf(C.Lits[K]) != 0)
        std::swap(C.Lits[Pos++], C.Lits[K]);
    if (Pos < 2) {
      // Root-satisfied clause with one non-false literal: that literal is
      // true and already sits in slot 0, so any second watch is inert.
      assert(valueOf(C.Lits[0]) == 1 && "unsatisfied clause became unit");
    }
    attach(static_cast<int>(I));
  }
}

size_t SatSolver::retireScopes(const std::vector<Lit> &Selectors,
                               const std::vector<int> &ScopeVars,
                               const std::vector<Lit> &ReleasableSelectors) {
  backtrack(0);
  ++ScopeRetirements;
  for (Lit Selector : Selectors)
    addClause({Selector.negated()});
  for (Lit Selector : ReleasableSelectors)
    addClause({Selector.negated()});
  if (Unsatisfiable)
    return 0; // Trivially Unsat database: nothing left worth sweeping.

  // Level-0 literals are permanently true and conflict analysis never walks
  // their reasons (analyze/analyzeFinal skip level-0 vars), so detaching
  // the root reasons makes every clause a legal deletion candidate. The
  // sweep below may evict exactly those reason clauses, so a certifying
  // run first dumps every still-implied root literal as a derived unit —
  // each is RUP at this moment, and the dump cannot repeat across
  // retirements because the reasons are detached right after.
  if (Proof)
    for (Lit L : Trail)
      if (Reason[L.var()] >= 0)
        Proof->addDerive({L.Encoded});
  for (Lit L : Trail)
    Reason[L.var()] = -1;

  // InScope: selector and scope vars, whose learned clauses are dropped.
  // Owned: scope vars only — the caller's scope-private set, whose
  // *problem* clauses (Tseitin definitions of the retired subtree's
  // formulas) are dropped too. Sound by the privacy contract: every clause
  // mentioning an owned var belongs to an assertion of the retired
  // subtree, and those assertions are vacuous once their selectors are
  // false at root.
  std::vector<bool> InScope(Assign.size(), false);
  std::vector<bool> Owned(Assign.size(), false);
  std::vector<bool> Releasable(Assign.size(), false);
  for (Lit Selector : Selectors)
    InScope[static_cast<size_t>(Selector.var())] = true;
  for (Lit Selector : ReleasableSelectors) {
    InScope[static_cast<size_t>(Selector.var())] = true;
    Releasable[static_cast<size_t>(Selector.var())] = true;
  }
  for (int V : ScopeVars) {
    InScope[static_cast<size_t>(V)] = true;
    Owned[static_cast<size_t>(V)] = true;
  }

  std::vector<bool> Remove(Clauses.size(), false);
  size_t Removed = 0;
  int64_t LearnedRemoved = 0;
  for (size_t I = 0; I != Clauses.size(); ++I) {
    const Clause &C = Clauses[I];
    bool RootSat = false, MentionsScope = false, MentionsOwned = false;
    for (Lit L : C.Lits) {
      if (valueOf(L) == 1)
        RootSat = true;
      MentionsScope = MentionsScope || InScope[static_cast<size_t>(L.var())];
      MentionsOwned = MentionsOwned || Owned[static_cast<size_t>(L.var())];
    }
    if (RootSat || MentionsOwned || (C.Learned && MentionsScope)) {
      Remove[I] = true;
      ++Removed;
      LearnedRemoved += C.Learned;
    }
  }
  if (Removed != 0) {
    if (Proof)
      for (size_t I = 0; I != Clauses.size(); ++I)
        if (Remove[I])
          Proof->addDelete(proofLits(Clauses[I].Lits));
    compactClauses(Remove);
    LearnedAlive -= LearnedRemoved;
    EvictedClauses += static_cast<int64_t>(Removed);
  }

  // Reset the search state of dead variables (a var with no occurrence
  // left cannot influence any answer, and keeping its bumped activity
  // would keep the branching heuristic exploring a dead scope), and
  // recycle the dead *owned* ones: their index joins the free list that
  // addVar() drains. Only owned vars recycle — the caller's atom maps may
  // still name other dead vars, and handing such an index out again would
  // silently alias two meanings. An owned var pinned at root (typically a
  // Tseitin wrapper definition the retirement's own unit propagation
  // forced true) is a fact about a variable nothing mentions: it is
  // compacted off the trail and recycled too. Plain retired selectors stay
  // permanently false (legacy callers may still hold their atoms), but
  // *releasable* selectors — those the caller certifies will never be
  // assumed or re-encoded — follow the owned-var path: their pinned-false
  // unit is deleted from the proof, dropped from the trail, and the index
  // recycled, so a long-lived session's trail stops growing with its
  // retirement history.
  std::vector<bool> Occurs(Assign.size(), false);
  for (const Clause &C : Clauses)
    for (Lit L : C.Lits)
      Occurs[static_cast<size_t>(L.var())] = true;
  bool TrailDirty = false;
  std::vector<bool> DropFromTrail(Assign.size(), false);
  std::vector<int> RecycleLog; ///< Recycle records, after the unit deletes.
  for (int V = 1; V <= numVars(); ++V) {
    size_t S = static_cast<size_t>(V);
    if (Occurs[S] || IsFree[S])
      continue;
    bool Recyclable = RecyclingEnabled && (Owned[S] || Releasable[S]);
    if (Recyclable && Releasable[S])
      ++ReleasedSelectors;
    if (Assign[S] != Undef) {
      if (!Recyclable)
        continue; // A pinned fact that must keep holding (e.g. ~selector).
      // The pinned fact leaves the formula with its variable: log the unit
      // deletion, or the checker would (rightly) refuse to recycle an
      // index that still carries an axiom.
      if (Proof)
        Proof->addDelete({Lit(V, Assign[S] == 1).Encoded});
      Assign[S] = Undef;
      Level[S] = 0;
      DropFromTrail[S] = true;
      TrailDirty = true;
    }
    Activity[S] = 0.0;
    SavedPhase[S] = 0;
    Reason[S] = -1;
    if (Recyclable) {
      FreeVars.push_back(V);
      IsFree[S] = 1;
      ++RecycledVars;
      if (Proof)
        RecycleLog.push_back(V);
    }
  }
  // Recycle records go after every unit delete of the batch so the checker
  // rebuilds its root state once, not per variable.
  if (Proof)
    for (int V : RecycleLog)
      Proof->addRecycle(V);
  if (TrailDirty) {
    // Root level: no decision marks to maintain, and dropping a literal
    // nothing mentions cannot enable or retract any propagation.
    size_t OutT = 0;
    for (Lit L : Trail)
      if (!DropFromTrail[static_cast<size_t>(L.var())])
        Trail[OutT++] = L;
    Trail.resize(OutT);
    PropHead = OutT;
  }
  assert(reasonInvariantHolds() && "retireScopes broke a reason reference");
  return Removed;
}

bool SatSolver::varStateIsClean(int Var) const {
  size_t S = static_cast<size_t>(Var);
  if (Var < 1 || Var > numVars())
    return false;
  return Assign[S] == Undef && Activity[S] == 0.0 && SavedPhase[S] == 0 &&
         Reason[S] == -1 && Watches[2 * S].empty() &&
         Watches[2 * S + 1].empty();
}

bool SatSolver::reasonInvariantHolds() const {
  for (Lit L : Trail) {
    int R = Reason[L.var()];
    if (R < 0)
      continue;
    if (R >= static_cast<int>(Clauses.size()))
      return false;
    const Clause &C = Clauses[static_cast<size_t>(R)];
    bool Found = false;
    for (Lit Q : C.Lits)
      Found = Found || Q == L;
    if (!Found)
      return false;
  }
  return true;
}

// --- Prefix image & cross-shard clause exchange ------------------------------

void SatSolver::exportRootState(std::vector<std::vector<int>> &ClausesOut,
                                std::vector<int> &UnitsOut) const {
  assert(currentLevel() == 0 && "prefix export away from root level");
  assert(!Unsatisfiable && "prefix export of an unsatisfiable database");
  for (const Clause &C : Clauses) {
    assert(!C.Learned && "prefix export after search started");
    std::vector<int> Enc;
    Enc.reserve(C.Lits.size());
    for (Lit L : C.Lits)
      Enc.push_back(L.Encoded);
    ClausesOut.push_back(std::move(Enc));
  }
  for (Lit L : Trail)
    if (Reason[L.var()] == -1)
      UnitsOut.push_back(L.Encoded);
}

std::vector<PrefixClause>
SatSolver::exportLearnedClauses(int MaxVar, size_t MaxSize, int MaxGlue) const {
  std::vector<PrefixClause> Out;
  for (const Clause &C : Clauses) {
    if (!C.Learned || C.Lits.size() > MaxSize || C.Glue > MaxGlue)
      continue;
    bool Shareable = true;
    for (Lit L : C.Lits)
      if (L.var() > MaxVar || IsFree[static_cast<size_t>(L.var())]) {
        Shareable = false;
        break;
      }
    if (!Shareable)
      continue;
    PrefixClause P;
    P.Glue = C.Glue;
    P.Lits.reserve(C.Lits.size());
    for (Lit L : C.Lits)
      P.Lits.push_back(L.Encoded);
    std::sort(P.Lits.begin(), P.Lits.end());
    Out.push_back(std::move(P));
  }
  return Out;
}

bool SatSolver::importLearnedClause(const PrefixClause &In) {
  assert(currentLevel() == 0 && "clause import away from root level");
  assert(!Proof && "clause import into a certifying solver");
  if (Unsatisfiable)
    return false;
  std::vector<Lit> C;
  for (int E : In.Lits) {
    Lit L;
    L.Encoded = E;
    int V = L.var();
    if (V < 1 || V > numVars() || IsFree[static_cast<size_t>(V)])
      return false; // Ownership validation: unknown or retired variable.
    if (valueOf(L) == 1)
      return false; // Satisfied at root: nothing to adopt.
    if (valueOf(L) == 0)
      continue; // False at root; drop the literal.
    if (std::find(C.begin(), C.end(), L) != C.end())
      continue;
    if (std::find(C.begin(), C.end(), L.negated()) != C.end())
      return false; // Tautology.
    C.push_back(L);
  }
  // A shared clause is implied by the common prefix, so it can never be
  // empty under a satisfiable database; stay defensive against a caller
  // racing its own retirements.
  if (C.empty())
    return false;
  if (C.size() == 1) {
    enqueue(C[0], -1);
    if (propagate() != -1)
      Unsatisfiable = true;
    return true;
  }
  Clauses.push_back({std::move(C), true, In.Glue, 0.0});
  ++LearnedClauses;
  ++LearnedAlive;
  if (Clauses.size() > PeakClauses)
    PeakClauses = Clauses.size();
  attach(static_cast<int>(Clauses.size()) - 1);
  return true;
}
