//===- smt/SatSolver.cpp - CDCL propositional solver ------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "smt/SatSolver.h"

#include <algorithm>
#include <cassert>

using namespace semcomm;

SatSolver::SatSolver() {
  // Var indices are 1-based; slot 0 is a sentinel.
  Assign.push_back(Undef);
  Level.push_back(0);
  Reason.push_back(-1);
  Activity.push_back(0.0);
  Watches.resize(2);
}

int SatSolver::addVar() {
  Assign.push_back(Undef);
  Level.push_back(0);
  Reason.push_back(-1);
  Activity.push_back(0.0);
  Watches.resize(Watches.size() + 2);
  return numVars();
}

void SatSolver::attach(int ClauseIdx) {
  const Clause &C = Clauses[ClauseIdx];
  assert(C.Lits.size() >= 2 && "attach needs a watchable clause");
  Watches[watchIndex(C.Lits[0].negated())].push_back({ClauseIdx});
  Watches[watchIndex(C.Lits[1].negated())].push_back({ClauseIdx});
}

void SatSolver::addClause(const std::vector<Lit> &Input) {
  if (Unsatisfiable)
    return;

  // Normalize: drop duplicate literals and satisfied-at-root clauses.
  std::vector<Lit> C;
  for (Lit L : Input) {
    if (valueOf(L) == 1 && Level[L.var()] == 0)
      return; // Already true at root level.
    if (valueOf(L) == 0 && Level[L.var()] == 0)
      continue; // False at root; drop the literal.
    if (std::find(C.begin(), C.end(), L) != C.end())
      continue;
    if (std::find(C.begin(), C.end(), L.negated()) != C.end())
      return; // Tautology.
    C.push_back(L);
  }

  if (C.empty()) {
    Unsatisfiable = true;
    return;
  }
  if (C.size() == 1) {
    if (valueOf(C[0]) == 0) {
      Unsatisfiable = true;
      return;
    }
    if (valueOf(C[0]) == Undef)
      enqueue(C[0], -1);
    if (propagate() != -1)
      Unsatisfiable = true;
    return;
  }

  Clauses.push_back({std::move(C), false});
  attach(static_cast<int>(Clauses.size()) - 1);
}

void SatSolver::enqueue(Lit L, int ReasonIdx) {
  assert(valueOf(L) == Undef && "enqueue of an assigned literal");
  Assign[L.var()] = L.positive() ? 1 : 0;
  Level[L.var()] = currentLevel();
  Reason[L.var()] = ReasonIdx;
  Trail.push_back(L);
}

int SatSolver::propagate() {
  while (PropHead < Trail.size()) {
    Lit P = Trail[PropHead++];
    std::vector<Watcher> &Ws = Watches[watchIndex(P)];
    size_t Keep = 0;
    for (size_t I = 0; I != Ws.size(); ++I) {
      int CI = Ws[I].ClauseIdx;
      Clause &C = Clauses[CI];
      // Ensure the falsified literal sits in slot 1.
      Lit NotP = P.negated();
      if (C.Lits[0] == NotP)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == NotP && "watch list out of sync");

      if (valueOf(C.Lits[0]) == 1) {
        Ws[Keep++] = Ws[I]; // Clause already satisfied; keep the watch.
        continue;
      }
      // Look for a replacement watch.
      bool Moved = false;
      for (size_t K = 2; K != C.Lits.size(); ++K)
        if (valueOf(C.Lits[K]) != 0) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[watchIndex(C.Lits[1].negated())].push_back({CI});
          Moved = true;
          break;
        }
      if (Moved)
        continue;

      // No replacement: clause is unit or conflicting.
      Ws[Keep++] = Ws[I];
      if (valueOf(C.Lits[0]) == 0) {
        // Conflict: restore the untouched suffix of the watch list.
        for (size_t K = I + 1; K != Ws.size(); ++K)
          Ws[Keep++] = Ws[K];
        Ws.resize(Keep);
        return CI;
      }
      enqueue(C.Lits[0], CI);
    }
    Ws.resize(Keep);
  }
  return -1;
}

void SatSolver::bumpActivity(int Var) {
  Activity[Var] += ActivityInc;
  if (Activity[Var] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
}

void SatSolver::analyze(int ConflictIdx, std::vector<Lit> &Learned,
                        int &BackLevel) {
  // Standard first-UIP resolution walk over the trail.
  Learned.clear();
  Learned.push_back(Lit()); // Slot for the asserting literal.
  std::vector<bool> SeenVar(Assign.size(), false);
  int Counter = 0;
  Lit P;
  bool HaveP = false;
  size_t TrailIdx = Trail.size();
  int CI = ConflictIdx;

  do {
    assert(CI != -1 && "analysis walked past a decision");
    const Clause &C = Clauses[CI];
    for (size_t I = (HaveP ? 1 : 0); I != C.Lits.size(); ++I) {
      Lit Q = C.Lits[I];
      if (HaveP && Q == P)
        continue;
      int V = Q.var();
      if (SeenVar[V] || Level[V] == 0)
        continue;
      SeenVar[V] = true;
      bumpActivity(V);
      if (Level[V] == currentLevel())
        ++Counter;
      else
        Learned.push_back(Q);
    }
    // Pick the next trail literal to resolve on.
    while (!SeenVar[Trail[TrailIdx - 1].var()])
      --TrailIdx;
    --TrailIdx;
    P = Trail[TrailIdx];
    HaveP = true;
    SeenVar[P.var()] = false;
    CI = Reason[P.var()];
    --Counter;
  } while (Counter > 0);
  Learned[0] = P.negated();

  // Backjump level: the second-highest level in the learned clause.
  BackLevel = 0;
  size_t MaxIdx = 1;
  for (size_t I = 1; I < Learned.size(); ++I)
    if (Level[Learned[I].var()] > BackLevel) {
      BackLevel = Level[Learned[I].var()];
      MaxIdx = I;
    }
  if (Learned.size() > 1)
    std::swap(Learned[1], Learned[MaxIdx]);
}

void SatSolver::backtrack(int ToLevel) {
  if (currentLevel() <= ToLevel)
    return;
  size_t Bound = TrailLim[ToLevel];
  for (size_t I = Trail.size(); I != Bound; --I) {
    int V = Trail[I - 1].var();
    Assign[V] = Undef;
    Reason[V] = -1;
  }
  Trail.resize(Bound);
  TrailLim.resize(ToLevel);
  PropHead = Bound;
}

int SatSolver::pickBranchVar() {
  int Best = 0;
  double BestAct = -1.0;
  for (int V = 1; V <= numVars(); ++V)
    if (Assign[V] == Undef && Activity[V] > BestAct) {
      Best = V;
      BestAct = Activity[V];
    }
  return Best;
}

void SatSolver::analyzeFinal(Lit Failed) {
  // The conjunction of assumptions on the trail that (with the clause
  // database) falsifies \p Failed: walk the implication graph backwards
  // from ~Failed; every decision reached is an assumption (assumptions are
  // the only decisions while they are being placed).
  AssumpCore.clear();
  AssumpCore.push_back(Failed);
  if (currentLevel() == 0)
    return;
  std::vector<bool> SeenVar(Assign.size(), false);
  SeenVar[Failed.var()] = true;
  for (size_t I = Trail.size(); I > static_cast<size_t>(TrailLim[0]); --I) {
    int V = Trail[I - 1].var();
    if (!SeenVar[V])
      continue;
    if (Reason[V] == -1) {
      // A decision reached from the failed assumption is itself an
      // assumption (possibly Failed's own negation, when the assumption
      // list is directly contradictory).
      AssumpCore.push_back(Trail[I - 1]);
    } else {
      for (Lit Q : Clauses[Reason[V]].Lits)
        if (Level[Q.var()] > 0)
          SeenVar[Q.var()] = true;
    }
    SeenVar[V] = false;
  }
}

SatResult SatSolver::solve(const std::vector<Lit> &Assumptions,
                           int64_t MaxConflicts) {
  if (&Assumptions == &AssumpCore) {
    // solve(unsatCore()) is a natural idiom; don't let the clear() below
    // empty the caller's assumption set.
    std::vector<Lit> Copy = Assumptions;
    return solve(Copy, MaxConflicts);
  }
  AssumpCore.clear();
  backtrack(0);
  if (Unsatisfiable)
    return SatResult::Unsat;
  if (propagate() != -1) {
    Unsatisfiable = true;
    return SatResult::Unsat;
  }

  int64_t StartConflicts = Conflicts;
  int64_t RestartLimit = 64;
  int64_t SinceRestart = 0;

  while (true) {
    int ConflictIdx = propagate();
    if (ConflictIdx != -1) {
      ++Conflicts;
      ++SinceRestart;
      if (currentLevel() == 0) {
        Unsatisfiable = true;
        return SatResult::Unsat;
      }
      if (MaxConflicts >= 0 && Conflicts - StartConflicts > MaxConflicts) {
        backtrack(0);
        return SatResult::Unknown;
      }

      std::vector<Lit> Learned;
      int BackLevel = 0;
      analyze(ConflictIdx, Learned, BackLevel);
      backtrack(BackLevel);
      if (Learned.size() == 1) {
        // Asserting unit: analyze() computed BackLevel 0, so the trail is
        // already at the root and the unit survives every future solve.
        assert(currentLevel() == 0 && "unit learned above the root");
        enqueue(Learned[0], -1);
      } else {
        Clauses.push_back({Learned, true});
        ++LearnedClauses;
        int CI = static_cast<int>(Clauses.size()) - 1;
        attach(CI);
        enqueue(Learned[0], CI);
      }
      ActivityInc *= 1.05;
      continue;
    }

    if (SinceRestart >= RestartLimit) {
      SinceRestart = 0;
      RestartLimit = RestartLimit + RestartLimit / 2;
      backtrack(0);
      continue;
    }

    if (currentLevel() < static_cast<int>(Assumptions.size())) {
      // Place the next assumption as a pseudo-decision.
      Lit P = Assumptions[currentLevel()];
      if (valueOf(P) == 0) {
        analyzeFinal(P);
        backtrack(0);
        return SatResult::Unsat;
      }
      TrailLim.push_back(static_cast<int>(Trail.size()));
      if (valueOf(P) == Undef)
        enqueue(P, -1);
      continue;
    }

    int V = pickBranchVar();
    if (V == 0) {
      // Full assignment, no conflict: snapshot the model, then leave the
      // trail at the root so the solver is immediately reusable.
      ModelVals = Assign;
      backtrack(0);
      return SatResult::Sat;
    }
    ++Decisions;
    TrailLim.push_back(static_cast<int>(Trail.size()));
    enqueue(Lit(V, false), -1); // Negative-first polarity.
  }
}

bool SatSolver::modelValue(int Var) const {
  assert(Var >= 1 && Var <= numVars() && "model query out of range");
  assert(static_cast<size_t>(Var) < ModelVals.size() &&
         "no model saved for this variable");
  return ModelVals[Var] == 1;
}
