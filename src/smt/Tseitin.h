//===- smt/Tseitin.h - Structural CNF encoding ------------------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tseitin transformation from the logic's boolean structure into CNF over
/// atom variables. Non-propositional boolean expressions (equalities,
/// comparisons, state-query atoms, boolean variables) become SAT variables;
/// the caller (SmtSolver) is responsible for adding theory-consistency
/// bridge clauses over those atoms.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SMT_TSEITIN_H
#define SEMCOMM_SMT_TSEITIN_H

#include "logic/Expr.h"
#include "smt/SatSolver.h"

#include <map>

namespace semcomm {

/// Encodes expressions into a SatSolver, memoizing shared subformulas
/// (hash-consing makes the memoization exact).
class Tseitin {
public:
  explicit Tseitin(SatSolver &Solver) : Solver(Solver) {}

  /// Returns a literal equisatisfiably representing \p E.
  Lit encode(ExprRef E);

  /// Asserts \p E at the top level.
  void assertTrue(ExprRef E) { Solver.addClause({encode(E)}); }

  /// The atom map: every non-propositional boolean leaf and its variable.
  const std::map<ExprRef, int> &atoms() const { return Atoms; }

private:
  Lit freshDefinition();
  Lit atomLit(ExprRef Atom);

  SatSolver &Solver;
  std::map<ExprRef, Lit> Cache;
  std::map<ExprRef, int> Atoms;
};

} // namespace semcomm

#endif // SEMCOMM_SMT_TSEITIN_H
