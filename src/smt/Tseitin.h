//===- smt/Tseitin.h - Structural CNF encoding ------------------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tseitin transformation from the logic's boolean structure into CNF over
/// atom variables. Non-propositional boolean expressions (equalities,
/// comparisons, state-query atoms, boolean variables) become SAT variables;
/// the caller (SmtSolver) is responsible for adding theory-consistency
/// bridge clauses over those atoms.
///
/// The definition cache is *scope-layered* to support the session scope
/// trees: every layer has a parent, lookups walk the active layer's
/// ancestor chain (never a sibling), and fresh definition variables are
/// recorded as *owned* by the active layer. Because a definition created
/// under layer L can therefore only be referenced by encodings performed
/// under L or its descendants, retiring a scope subtree may evict every
/// clause mentioning the subtree layers' owned vars and recycle those
/// variable indices — the session-level invariant behind
/// SatSolver::retireScopes(). Atom variables stay global (one table for
/// the whole solver): they are shared with the theory bridges and keep
/// their index until the SMT layer's bridge compaction proves every scope
/// that mentioned them dead and releases them explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SMT_TSEITIN_H
#define SEMCOMM_SMT_TSEITIN_H

#include "logic/Expr.h"
#include "smt/SatSolver.h"
#include "smt/SessionAudit.h"

#include <map>
#include <vector>

namespace semcomm {

/// Encodes expressions into a SatSolver, memoizing shared subformulas per
/// scope layer (hash-consing makes the memoization exact).
class Tseitin {
public:
  using LayerId = unsigned;
  static constexpr LayerId RootLayer = 0;

  explicit Tseitin(SatSolver &Solver) : Solver(Solver) {
    Layers.push_back({{}, {}, RootLayer, true});
  }

  /// Opens a new cache layer under \p Parent and returns its id. The layer
  /// does not become active until setActiveLayer().
  LayerId pushLayer(LayerId Parent);
  /// Routes subsequent encode() inserts (and owned-var recording) to \p L.
  void setActiveLayer(LayerId L);
  LayerId activeLayer() const { return Active; }
  /// The definition variables created while \p L was active — the
  /// scope-private set a retirement hands to SatSolver::retireScopes().
  const std::vector<int> &ownedVars(LayerId L) const {
    return Layers[L].Owned;
  }
  /// Forgets a layer's cache and owned list (the caller retires the vars
  /// through the solver first). The layer must not be active and must have
  /// no live children.
  void dropLayer(LayerId L);

  /// Returns a literal equisatisfiably representing \p E. Cache lookups
  /// walk the active layer's ancestor chain; misses insert into the active
  /// layer.
  Lit encode(ExprRef E);

  /// Asserts \p E at the top level.
  void assertTrue(ExprRef E) { Solver.addClause({encode(E)}); }

  /// The atom map: every non-propositional boolean leaf and its variable.
  const std::map<ExprRef, int> &atoms() const { return Atoms; }

  /// Erases \p Atom's global atom-map entry and returns true when one was
  /// present. Only legal after the variable has been retired through the
  /// solver (its index recycled or about to be): atom vars are global
  /// precisely because bridges and scoped encodings may reference them, so
  /// the caller must guarantee no live clause and no live cache layer
  /// still names the variable. The SMT layer's bridge compaction and
  /// selector release provide that guarantee (dead-owner accounting plus
  /// epoch-tagged selector names); with the entry gone, a future encode of
  /// the same expression allocates a fresh variable instead of aliasing
  /// the recycled index.
  bool releaseAtom(ExprRef Atom) { return Atoms.erase(Atom) != 0; }

  /// Attaches a discipline event log (lint replays record layer pushes,
  /// definition creations, and cache references through it). Not owned.
  void setAuditLog(audit::Log *L) { Audit = L; }

  /// --- Prefix-image hooks (SmtSession::exportPrefix/importPrefix) ------
  ///
  /// Read access to one layer's definition cache, for prefix export.
  const std::map<ExprRef, Lit> &layerCache(LayerId L) const {
    return Layers[L].Cache;
  }
  /// Import-only installers: plant an atom-map entry, a cached definition,
  /// or an owned-var record into layer \p L without encoding anything.
  /// The caller (importPrefix) guarantees the variable indices were
  /// already replayed into the solver, so later encodes and retirements
  /// see exactly the state the exporting encoder had.
  void importAtom(ExprRef Atom, int Var) { Atoms.emplace(Atom, Var); }
  void importDefinition(LayerId L, ExprRef E, Lit Def) {
    Layers[L].Cache.emplace(E, Def);
  }
  void importOwnedVar(LayerId L, int Var) { Layers[L].Owned.push_back(Var); }

private:
  struct Layer {
    std::map<ExprRef, Lit> Cache;
    std::vector<int> Owned; ///< Definition vars created under this layer.
    LayerId Parent;
    bool Alive;
  };

  Lit freshDefinition();
  Lit atomLit(ExprRef Atom);
  const Lit *lookup(ExprRef E) const;

  SatSolver &Solver;
  std::vector<Layer> Layers;
  LayerId Active = RootLayer;
  std::map<ExprRef, int> Atoms;
  audit::Log *Audit = nullptr; ///< Optional discipline event log.
};

} // namespace semcomm

#endif // SEMCOMM_SMT_TSEITIN_H
