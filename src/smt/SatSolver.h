//===- smt/SatSolver.h - CDCL propositional solver --------------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact CDCL SAT solver (two-watched-literal propagation, 1UIP clause
/// learning, activity-based decisions, geometric restarts). It is the
/// workhorse under the SmtSolver facade, playing the role Z3/CVC3 play under
/// Jahob's integrated reasoning (§1.4): the symbolic engine eagerly encodes
/// its verification conditions into propositional logic and asks this
/// solver for a countermodel.
///
/// The solver is *incremental* in the MiniSat style: solve(Assumptions)
/// decides the clause database under a set of assumption literals placed as
/// pseudo-decisions. Because learned clauses never resolve on decisions,
/// every clause learned under assumptions is implied by the database alone
/// and is retained across calls — a warm solver discharges a family of
/// near-identical queries (the catalog's ArrayList case splits) without
/// re-deriving its lemmas. After an assumption-failed solve, unsatCore()
/// names the subset of assumptions responsible.
///
/// Because shared sessions now live for a whole (family, op-pair) — and the
/// conflict-heavy benches (BM_Pigeonhole) learn orders of magnitude more
/// clauses than they keep using — the solver periodically *reduces* the
/// learned-clause database: clauses are ranked by a bumped/decayed activity
/// score, and the least useful half is dropped at root level. Clauses that
/// are the reason of a currently implied literal, binary clauses, and
/// low-glue clauses (LBD <= 2) are never dropped, so the reduction can
/// never change a SAT/UNSAT answer — only the work needed to re-derive a
/// discarded lemma. Decisions use saved phases (the last value a variable
/// held), which keeps the search near previously satisfying regions across
/// the near-identical queries of one session.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SMT_SATSOLVER_H
#define SEMCOMM_SMT_SATSOLVER_H

#include "proof/ProofTrace.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace semcomm {

/// A propositional literal: variable index (1-based) with sign.
struct Lit {
  int Encoded = 0; ///< +v for v, -v for ~v; 0 is invalid.

  Lit() = default;
  Lit(int Var, bool Positive) : Encoded(Positive ? Var : -Var) {}

  int var() const { return Encoded > 0 ? Encoded : -Encoded; }
  bool positive() const { return Encoded > 0; }
  Lit negated() const {
    Lit L;
    L.Encoded = -Encoded;
    return L;
  }
  friend bool operator==(Lit A, Lit B) { return A.Encoded == B.Encoded; }
};

/// Satisfiability verdicts. Unknown is returned when the conflict budget is
/// exhausted — the analogue of the paper's prover timeouts (Table 5.8's
/// ArrayList entry is dominated by such timeouts).
enum class SatResult : uint8_t { Sat, Unsat, Unknown };

/// Wire format of the cross-shard learned-clause exchange: encoded
/// literals (+v / -v, sorted ascending, so the exchange can dedup on the
/// vector alone) plus the LBD recorded at learning time. The variable
/// indices are only meaningful between solvers that replayed the same
/// prefix image (smt/PrefixImage.h).
struct PrefixClause {
  std::vector<int> Lits;
  int Glue = 0;
};

/// Conflict-driven clause-learning SAT solver.
class SatSolver {
public:
  SatSolver();

  /// Allocates a variable and returns its 1-based index. Indices of
  /// variables recycled by retireScopes() are handed out again (most
  /// recently retired first) before the variable array grows, so the live
  /// variable count — not just the clause count — is bounded over a
  /// long-lived session; a reused index starts with clean search state
  /// (unassigned, zero activity, default phase, empty watch lists).
  int addVar();

  /// Adds a clause (empty clause makes the instance trivially Unsat).
  /// May be called between solve() calls; the clause joins the retained
  /// database.
  void addClause(const std::vector<Lit> &Clause);

  /// Solves under an optional conflict budget (negative = unlimited).
  SatResult solve(int64_t MaxConflicts = -1) { return solve({}, MaxConflicts); }

  /// Solves the retained clause database under \p Assumptions, each placed
  /// as a pseudo-decision. Unsat means the database contradicts the
  /// assumptions (unsatCore() then names the culprits); the database itself
  /// stays usable, and clauses learned during the search are retained. The
  /// conflict budget is per-call.
  SatResult solve(const std::vector<Lit> &Assumptions,
                  int64_t MaxConflicts = -1);

  /// After an Unsat solve(Assumptions): the subset of the assumptions that
  /// already suffices for unsatisfiability (empty when the database is
  /// unsatisfiable on its own).
  const std::vector<Lit> &unsatCore() const { return AssumpCore; }

  /// Model access after Sat: the value of \p Var.
  bool modelValue(int Var) const;

  /// Statistics for the verification-time tables. Conflict/decision counts
  /// are cumulative across solve() calls.
  int64_t numConflicts() const { return Conflicts; }
  int64_t numDecisions() const { return Decisions; }
  int numVars() const { return static_cast<int>(Assign.size()) - 1; }
  /// Retained clauses (problem + learned); unit clauses live on the trail
  /// and are not counted.
  size_t numClauses() const { return Clauses.size(); }
  int64_t numLearnedClauses() const { return LearnedClauses; }

  /// Clause-database reduction. GC runs automatically during solve() once
  /// the live learned-clause count passes a growing threshold; both knobs
  /// exist so tests can force aggressive reduction and benches can pin the
  /// no-GC baseline.
  void setClauseGc(bool Enabled) { GcEnabled = Enabled; }
  /// First reduction fires at \p FirstLimit live learned clauses; each
  /// reduction raises the threshold by 50%. Values below 1 keep the
  /// current threshold (a zero limit would otherwise pin the threshold at
  /// zero and run a full compaction at every restart).
  void setClauseGcLimit(int64_t FirstLimit) {
    if (FirstLimit > 0)
      ReduceLimit = FirstLimit;
  }
  /// Reduces the learned database now (root level only, i.e. between
  /// solve() calls or from the solver's own restart points). Returns the
  /// number of clauses reclaimed. Reason, binary, and glue-protected
  /// clauses always survive.
  size_t reduceDb();
  int64_t numDbReductions() const { return DbReductions; }
  int64_t numReclaimedClauses() const { return ReclaimedClauses; }

  /// Permanently retires a selector *subtree* in one pass (root level
  /// only): every literal in \p Selectors — an interior selector node
  /// together with all the selectors nested under it — is asserted false
  /// as a unit clause, then one sweep evicts
  ///
  ///  * every clause satisfied at root level (with the selectors now
  ///    false at root this covers all the subtree's selector-guarded
  ///    problem clauses),
  ///  * every learned clause mentioning a selector or scope var (learned
  ///    clauses are redundant, so this can never change an answer), and
  ///  * every clause — problem clauses included — mentioning a var in
  ///    \p ScopeVars. Passing a var here is the caller's guarantee that
  ///    it is *private* to the retired subtree: no live assertion's
  ///    encoding mentions it (SmtSession derives the set from its
  ///    scope-layered Tseitin bookkeeping).
  ///
  /// Scope vars that end up with no occurrence and no assignment are
  /// *recycled*: their activity/phase state is reset and their indices
  /// join a free list that addVar() drains, so the variable count is
  /// bounded by the live scope. Dead non-scope vars only get their
  /// activity/phase reset (their indices may still be referenced by the
  /// caller's atom maps). Returns the number of clauses evicted.
  size_t retireScopes(const std::vector<Lit> &Selectors,
                      const std::vector<int> &ScopeVars) {
    return retireScopes(Selectors, ScopeVars, {});
  }
  /// Extended retirement for the long-lived service loop: selectors in
  /// \p ReleasableSelectors are falsified and swept exactly like
  /// \p Selectors, but when such a selector ends up dead (no clause
  /// occurrence), its pinned-false unit is compacted off the trail and its
  /// index joins the free list — the caller's guarantee is that the
  /// selector will never be assumed or re-encoded again (epoch-tagged
  /// selector names make every reopened scope a fresh atom). This is the
  /// trail-compaction half of bridge/selector compaction: without it a
  /// warm session's trail grows by one pinned literal per retired scope
  /// forever.
  size_t retireScopes(const std::vector<Lit> &Selectors,
                      const std::vector<int> &ScopeVars,
                      const std::vector<Lit> &ReleasableSelectors);
  /// Single-selector convenience wrapper around retireScopes().
  size_t retireScope(Lit Selector, const std::vector<int> &ScopeVars) {
    return retireScopes({Selector}, ScopeVars);
  }
  /// Disables index recycling (reference runs for the recycle fuzz and the
  /// peak-live-vars acceptance comparison; eviction is unaffected).
  void setVarRecycling(bool Enabled) { RecyclingEnabled = Enabled; }
  int64_t numScopeRetirements() const { return ScopeRetirements; }
  int64_t numEvictedClauses() const { return EvictedClauses; }
  int64_t numRecycledVars() const { return RecycledVars; }
  /// Retired selectors whose pinned-false units were compacted off the
  /// trail and whose indices were recycled (subset of numRecycledVars).
  int64_t numReleasedSelectors() const { return ReleasedSelectors; }
  /// True when \p Var currently sits on the recycler's free list. The SMT
  /// layer uses this after a retirement to decide which atom-map entries
  /// may be erased: only a free-listed index is guaranteed to carry no
  /// clause, no assignment, and no meaning.
  bool varIsFree(int Var) const {
    return Var >= 1 && Var <= numVars() && IsFree[static_cast<size_t>(Var)];
  }
  /// Variable accounting for the catalog-session statistics: slots
  /// currently backing a live (non-free-listed) variable, the high-water
  /// mark of that number, cumulative addVar() calls (what the allocation
  /// would be without recycling), and the clause-count high-water mark.
  int numLiveVars() const {
    return numVars() - static_cast<int>(FreeVars.size());
  }
  int peakLiveVars() const { return PeakLiveVars; }
  int64_t numVarRequests() const { return VarRequests; }
  size_t peakClauses() const { return PeakClauses; }
  /// Restarts the live-var/clause high-water marks from the *current*
  /// live counts. The service loop calls this at pass boundaries so the
  /// steady-state plateau (pass N peak vs pass N-1 peak) is observable
  /// instead of being masked by the first pass's warm-up peak.
  void resetPeakStats() {
    PeakLiveVars = numLiveVars();
    PeakClauses = Clauses.size();
  }
  /// Debug check for tests: \p Var is unassigned with zero activity,
  /// default phase, no reason, and empty watch lists — the state every
  /// recycled index must present on reuse.
  bool varStateIsClean(int Var) const;
  /// Debug check: every implied literal's reason clause still exists and
  /// contains that literal — the invariant reduceDb() must preserve.
  bool reasonInvariantHolds() const;

  /// Attaches a DRAT-style proof trace (proof/ProofTrace.h). Must be set
  /// before the first addClause() so the trace sees every stored clause;
  /// the solver does not own the trace. While attached, the solver logs
  /// every stored input clause, every learned clause (including the
  /// root-trail literals dumped before a retirement detaches their
  /// reasons), every deletion — reduceDb, retireScopes, and the unit
  /// clauses compacted off the trail when a pinned variable is recycled —
  /// and every recycled variable index.
  void setProofTrace(proof::ProofTrace *P) { Proof = P; }
  proof::ProofTrace *proofTrace() const { return Proof; }
  /// Logs one Query step: \p Core is the final unsat core of a verdict the
  /// caller wants certified; the live stored-clause count is stamped so
  /// the checker can cross-check its mirrored database.
  void logQueryProof(const std::vector<Lit> &Core);

  /// --- Prefix image & cross-shard clause exchange ----------------------
  ///
  /// Snapshot of the root-level database for the prefix image (root level
  /// only, before any search): stored clauses in insertion order and the
  /// trail's *input* units (reason-free literals) in trail order, as
  /// encoded ints. Replaying addVar() x numVars(), then addClause() over
  /// the clauses, then over the units, reconstructs the identical
  /// root-propagated fixpoint: stored clauses were normalized against the
  /// root assignment at their original insertion, so none is dropped or
  /// shortened when re-added before the first unit.
  void exportRootState(std::vector<std::vector<int>> &ClausesOut,
                       std::vector<int> &UnitsOut) const;
  /// Root-level learned clauses whose every variable is live and
  /// <= \p MaxVar, with at most \p MaxSize literals and glue <= \p MaxGlue
  /// — the shareable subset for the cross-shard exchange. Literals come
  /// out sorted (the exchange's dedup key).
  std::vector<PrefixClause> exportLearnedClauses(int MaxVar, size_t MaxSize,
                                                 int MaxGlue) const;
  /// Adopts a foreign learned clause between solves (root level only).
  /// Every variable must be in range and live — the importing side's
  /// ownership validation — and the clause is root-normalized like any
  /// input; clauses already satisfied at root (or naming a retired
  /// variable) are rejected. Returns true when the clause was adopted.
  /// Never legal on a certifying solver: a foreign clause has no local
  /// derivation, so it must not enter a logged database.
  bool importLearnedClause(const PrefixClause &In);

private:
  enum : uint8_t { Undef = 2 };

  struct Clause {
    std::vector<Lit> Lits;
    bool Learned = false;
    int Glue = 0;       ///< LBD at learning time; <= 2 is GC-protected.
    double Act = 0.0;   ///< Bumped when used in conflict analysis.
  };

  struct Watcher {
    int ClauseIdx;
  };

  // Assignment trail.
  std::vector<uint8_t> Assign;  ///< Per-var value (0/1/Undef).
  std::vector<int> Level;       ///< Decision level per var.
  std::vector<int> Reason;      ///< Clause index forcing the var, or -1.
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;    ///< Trail indices where levels start.
  size_t PropHead = 0;

  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; ///< Indexed by literal code.
  std::vector<double> Activity;
  std::vector<uint8_t> SavedPhase; ///< Last assigned value per var.
  std::vector<int64_t> GlueStamp;  ///< Per-level scratch for LBD counting.
  int64_t GlueStampGen = 0;
  double ActivityInc = 1.0;
  double ClauseActInc = 1.0;
  bool Unsatisfiable = false;

  std::vector<Lit> AssumpCore;    ///< Core of the last assumption-failure.
  std::vector<uint8_t> ModelVals; ///< Snapshot of the last Sat assignment.

  int64_t Conflicts = 0;
  int64_t Decisions = 0;
  int64_t LearnedClauses = 0;
  int64_t LearnedAlive = 0;   ///< Learned clauses currently in the database.
  bool GcEnabled = true;
  /// Live learned clauses that trigger a GC. The default comes from
  /// bench/perf_engine_scaling's gc_budget_sweep: on the catalog workload,
  /// budgets at or below ~500 reclaim clauses with *zero* extra conflicts
  /// (lemma locality is per-pair, and family sessions evict pairs anyway),
  /// while larger thresholds simply never fire; on the conflict-heavy
  /// warm-pigeonhole bench, 500 bounds retention without changing any
  /// answer. Overridable per session via --gc-budget.
  int64_t ReduceLimit = 500;
  int64_t DbReductions = 0;
  int64_t ReclaimedClauses = 0;
  int64_t ScopeRetirements = 0;
  int64_t EvictedClauses = 0;

  // Variable recycling (fed by retireScopes, drained by addVar).
  std::vector<int> FreeVars;     ///< Recycled indices, LIFO.
  std::vector<uint8_t> IsFree;   ///< Per-var free-list membership.
  bool RecyclingEnabled = true;
  proof::ProofTrace *Proof = nullptr; ///< Not owned; null = no logging.
  int64_t RecycledVars = 0;
  int64_t ReleasedSelectors = 0;
  int64_t VarRequests = 0;
  int PeakLiveVars = 0;
  size_t PeakClauses = 0;

  size_t watchIndex(Lit L) const {
    return 2 * static_cast<size_t>(L.var()) + (L.positive() ? 0 : 1);
  }
  uint8_t valueOf(Lit L) const {
    uint8_t V = Assign[L.var()];
    if (V == Undef)
      return Undef;
    return L.positive() ? V : static_cast<uint8_t>(1 - V);
  }
  void enqueue(Lit L, int ReasonIdx);
  int propagate(); ///< Returns conflicting clause index or -1.
  void analyze(int ConflictIdx, std::vector<Lit> &Learned, int &BackLevel,
               int &Glue);
  /// Runs reduceDb() and grows the threshold when the live learned-clause
  /// count has passed it. Root level only (callers are solve() entry and
  /// the restart point).
  void maybeReduceDb();
  /// Drops the clauses marked in \p Remove, remaps the surviving reasons,
  /// and rebuilds every watch list (root level only; shared tail of
  /// reduceDb() and retireScope()).
  void compactClauses(const std::vector<bool> &Remove);
  void analyzeFinal(Lit Failed); ///< Fills AssumpCore from the trail.
  void backtrack(int ToLevel);
  void bumpActivity(int Var);
  void bumpClauseActivity(int ClauseIdx);
  void attach(int ClauseIdx);
  int pickBranchVar();
  int currentLevel() const { return static_cast<int>(TrailLim.size()); }
};

} // namespace semcomm

#endif // SEMCOMM_SMT_SATSOLVER_H
