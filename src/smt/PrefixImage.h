//===- smt/PrefixImage.h - Pre-encoded catalog prefix image -----*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A read-only snapshot of a warm session's root-level solver state — the
/// catalog-common prefix plus its bridge lattice — taken once per process
/// and *loaded* by every other shard instead of being re-encoded per shard
/// (SmtSession::exportPrefix() / importPrefix()). The image holds ExprRefs,
/// so it is only meaningful between sessions sharing one ExprFactory
/// (hash-consing makes the references stable and comparable); cross-process
/// identity is checked on the canonical serialize() text, which spells
/// every expression out by its printed form.
///
/// What the image captures:
///  * the propositional database: variable count, stored root clauses in
///    insertion order, and the trail's input units in trail order — a
///    replay through addVar()/addClause() reconstructs the identical
///    root-propagated fixpoint (clauses are already root-normalized at
///    export, and the replay adds every clause before the first unit);
///  * the Tseitin state: the global atom map plus the root layer's (and,
///    under bridge compaction, the bridge layer's) definition cache and
///    owned-variable list;
///  * the theory registries (object terms, membership atoms, canonical
///    integer atoms with their linear-form metadata) and the bridge
///    watermarks, so an importing session emits no duplicate bridges;
///  * the base-atom vocabulary for countermodel reporting.
///
/// PrefixClause is the companion wire format for the cross-shard
/// learned-clause exchange: a root-level learned clause over prefix-owned
/// variables (indices <= PrefixImage::NumVars), literal-sorted so the
/// exchange can dedup on the literal vector alone.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SMT_PREFIXIMAGE_H
#define SEMCOMM_SMT_PREFIXIMAGE_H

#include "logic/Expr.h"
#include "smt/SatSolver.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace semcomm {

/// Snapshot of a session's catalog-common prefix (see file comment).
struct PrefixImage {
  // Propositional database.
  int NumVars = 0;
  std::vector<std::vector<int>> Clauses; ///< Stored clauses, encoded lits.
  std::vector<int> Units;                ///< Input units, trail order.

  // Tseitin state. Maps are keyed by ExprRef (pointer order), so the
  // exported vectors are re-sorted by printed form — the stable total
  // order — to make the in-memory image, and serialize(), run-invariant.
  std::vector<std::pair<ExprRef, int>> Atoms;    ///< Atom -> variable.
  std::vector<std::pair<ExprRef, int>> RootDefs; ///< Expr -> encoded lit.
  std::vector<int> RootOwned;
  bool HasBridgeLayer = false; ///< Exporter had bridge compaction on.
  std::vector<std::pair<ExprRef, int>> BridgeDefs;
  std::vector<int> BridgeOwned;

  // Theory registries, discovery order (map lookups are recovered from
  // ObjTerms by kind, preserving order).
  std::vector<ExprRef> ObjTerms;
  std::vector<ExprRef> MemAtoms;
  struct IntAtomEntry {
    ExprRef Atom = nullptr;
    std::string Signature;
    bool IsEq = false;
    int64_t C = 0;
  };
  std::vector<IntAtomEntry> IntAtoms;

  std::vector<ExprRef> BaseAtoms; ///< Sorted by printed form.
  int64_t LiveBridges = 0;

  bool empty() const { return NumVars == 0; }

  /// Canonical text form: byte-identical across runs and processes for
  /// images exported from the same asserted-formula sequence (tests and
  /// the --dump-prefix CI check pin this). Not a parser format — identity
  /// and inspection only.
  std::string serialize() const;
};

} // namespace semcomm

#endif // SEMCOMM_SMT_PREFIXIMAGE_H
