//===- smt/SmtSolver.cpp - Eager-encoding SMT facade -------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include "logic/Printer.h"
#include "support/Unreachable.h"

#include <algorithm>
#include <cassert>
#include <type_traits>

using namespace semcomm;
using detail::IntAtomInfo;

// --- Linear integer atom canonicalization -----------------------------------

namespace {

/// A linear combination of opaque integer symbols plus a constant.
struct LinearForm {
  std::map<std::string, std::pair<ExprRef, int64_t>> Coeffs; // key: printed
  int64_t Constant = 0;

  void addSymbol(ExprRef Sym, int64_t C) {
    std::string Key = printAbstract(Sym);
    auto [It, _] = Coeffs.try_emplace(Key, Sym, 0);
    It->second.second += C;
    if (It->second.second == 0)
      Coeffs.erase(It);
  }

  void negate() {
    for (auto &[K, V] : Coeffs)
      V.second = -V.second;
    Constant = -Constant;
  }

  std::string signature() const {
    std::string Sig;
    for (const auto &[K, V] : Coeffs)
      Sig += (V.second >= 0 ? "+" : "") + std::to_string(V.second) + "*" + K;
    return Sig;
  }
};

/// Decomposes an Int-sorted expression into a LinearForm; any
/// non-arithmetic subterm (variable, indexOf, size, counter, ...) is an
/// opaque symbol.
void decompose(ExprRef E, int64_t Sign, LinearForm &Out) {
  switch (E->kind()) {
  case ExprKind::ConstInt:
    Out.Constant += Sign * E->intValue();
    return;
  case ExprKind::Add:
    decompose(E->operand(0), Sign, Out);
    decompose(E->operand(1), Sign, Out);
    return;
  case ExprKind::Sub:
    decompose(E->operand(0), Sign, Out);
    decompose(E->operand(1), -Sign, Out);
    return;
  case ExprKind::Neg:
    decompose(E->operand(0), -Sign, Out);
    return;
  default:
    assert(E->sort() == Sort::Int && "non-integer term in linear form");
    Out.addSymbol(E, Sign);
    return;
  }
}

} // namespace

ExprRef SmtSession::canonicalIntAtom(ExprKind K, ExprRef A, ExprRef B) {
  // diff = A - B  (for Lt: A < B  <=>  diff <= -1; Le: diff <= 0).
  LinearForm Diff;
  decompose(A, 1, Diff);
  decompose(B, -1, Diff);
  int64_t Bound = -Diff.Constant;
  Diff.Constant = 0;

  if (Diff.Coeffs.empty()) {
    switch (K) {
    case ExprKind::Eq:
      return F.boolConst(0 == Bound);
    case ExprKind::Lt:
      return F.boolConst(0 < Bound);
    case ExprKind::Le:
      return F.boolConst(0 <= Bound);
    default:
      semcomm_unreachable("bad int atom kind");
    }
  }

  bool IsEq = (K == ExprKind::Eq);
  if (K == ExprKind::Lt)
    Bound -= 1; // sum <= Bound - 1.

  // Canonical sign for equalities: least symbol has a positive coefficient.
  if (IsEq && Diff.Coeffs.begin()->second.second < 0) {
    Diff.negate();
    Bound = -Bound;
  }

  std::string Name = std::string(IsEq ? "ieq" : "ile") + "[" +
                     Diff.signature() + "]" + std::to_string(Bound);
  ExprRef Atom = F.var(Name, Sort::Bool);
  if (IntAtomSeen.insert(Atom).second)
    IntAtoms.push_back({Atom, {Diff.signature(), IsEq, Bound}});
  return Atom;
}

ExprRef SmtSession::eqObj(ExprRef A, ExprRef B) {
  if (A == B)
    return F.trueExpr();
  // Lower object-sorted ITEs into the boolean structure.
  if (A->kind() == ExprKind::Ite)
    return F.disj({F.conj({normalize(A->operand(0)),
                           eqObj(A->operand(1), B)}),
                   F.conj({F.lnot(normalize(A->operand(0))),
                           eqObj(A->operand(2), B)})});
  if (B->kind() == ExprKind::Ite)
    return eqObj(B, A);
  // Canonical operand order (printed form is a stable total order).
  if (printAbstract(B) < printAbstract(A))
    std::swap(A, B);
  return F.eq(A, B);
}

ExprRef SmtSession::normalizeAtom(ExprRef E) {
  switch (E->kind()) {
  case ExprKind::Eq: {
    Sort S = E->operand(0)->sort();
    if (S == Sort::Int)
      return canonicalIntAtom(ExprKind::Eq, E->operand(0), E->operand(1));
    if (S == Sort::Obj)
      return eqObj(E->operand(0), E->operand(1));
    return F.iff(normalize(E->operand(0)), normalize(E->operand(1)));
  }
  case ExprKind::Lt:
    return canonicalIntAtom(ExprKind::Lt, E->operand(0), E->operand(1));
  case ExprKind::Le:
    return canonicalIntAtom(ExprKind::Le, E->operand(0), E->operand(1));
  default:
    // Boolean variables and state-query atoms stay as they are.
    return E;
  }
}

ExprRef SmtSession::normalize(ExprRef E) {
  switch (E->kind()) {
  case ExprKind::Not:
    return F.lnot(normalize(E->operand(0)));
  case ExprKind::And:
  case ExprKind::Or: {
    std::vector<ExprRef> Ops;
    for (ExprRef Op : E->operands())
      Ops.push_back(normalize(Op));
    return E->kind() == ExprKind::And ? F.conj(std::move(Ops))
                                      : F.disj(std::move(Ops));
  }
  case ExprKind::Implies:
    return F.implies(normalize(E->operand(0)), normalize(E->operand(1)));
  case ExprKind::Iff:
    return F.iff(normalize(E->operand(0)), normalize(E->operand(1)));
  case ExprKind::Ite:
    assert(E->sort() == Sort::Bool && "non-boolean ITE outside an atom");
    return F.ite(normalize(E->operand(0)), normalize(E->operand(1)),
                 normalize(E->operand(2)));
  default:
    return normalizeAtom(E);
  }
}

// --- Incremental bridge generation -------------------------------------------

void SmtSession::recordOwner(ExprRef E) {
  if (!BridgeCompactionEnabled)
    return;
  auto &Owners = EntryOwners[E];
  // RootScope ownership is permanent, so the reverse index (walked only
  // at retirement) never carries it.
  if (Owners.insert(AttrScope).second && AttrScope != RootScope)
    ScopeEntries[AttrScope].push_back(E);
  DeadEntries.erase(E);
}

void SmtSession::collectTheoryAtoms(ExprRef E) {
  if (E->kind() == ExprKind::Eq && E->operand(0)->sort() == Sort::Obj) {
    for (ExprRef T : {E->operand(0), E->operand(1)}) {
      if (ObjTermSet.insert(T).second) {
        ObjTerms.push_back(T);
        if (T->kind() == ExprKind::MapGet)
          MapLookups.push_back(T);
      }
      recordOwner(T);
    }
    return;
  }
  if (E->kind() == ExprKind::SetContains) {
    if (MemAtomSet.insert(E).second)
      MemAtoms.push_back(E);
    recordOwner(E);
    return;
  }
  // Canonical integer atoms are minted during normalization (before this
  // walk), so here they are leaves of the registry's own making.
  if (BridgeCompactionEnabled && IntAtomSeen.count(E)) {
    recordOwner(E);
    return;
  }
  for (ExprRef Op : E->operands())
    collectTheoryAtoms(Op);
}

void SmtSession::emitNewBridges() {
  std::vector<ExprRef> Bridges;

  // Equality transitivity over every term triple that mentions a new term.
  // New terms have the highest indices, so iterating the triple's maximum
  // index over the new range enumerates each new triple exactly once. The
  // pairwise atoms are created through eqObj so they coincide with the
  // assertions' atoms.
  for (size_t K = BridgedObjTerms; K < ObjTerms.size(); ++K)
    for (size_t J = 0; J != K; ++J)
      for (size_t I = 0; I != J; ++I) {
        ExprRef AB = eqObj(ObjTerms[I], ObjTerms[J]);
        ExprRef BC = eqObj(ObjTerms[J], ObjTerms[K]);
        ExprRef AC = eqObj(ObjTerms[I], ObjTerms[K]);
        Bridges.push_back(F.implies(F.conj({AB, BC}), AC));
        Bridges.push_back(F.implies(F.conj({AB, AC}), BC));
        Bridges.push_back(F.implies(F.conj({BC, AC}), AB));
      }

  // Congruence for map lookups: equal keys read equal values.
  for (size_t J = BridgedMapLookups; J < MapLookups.size(); ++J)
    for (size_t I = 0; I != J; ++I) {
      if (MapLookups[I]->operand(0) != MapLookups[J]->operand(0))
        continue;
      ExprRef KeysEq =
          eqObj(MapLookups[I]->operand(1), MapLookups[J]->operand(1));
      Bridges.push_back(
          F.implies(KeysEq, eqObj(MapLookups[I], MapLookups[J])));
    }

  // Congruence for set membership: equal elements agree on membership.
  for (size_t J = BridgedMemAtoms; J < MemAtoms.size(); ++J)
    for (size_t I = 0; I != J; ++I) {
      if (MemAtoms[I]->operand(0) != MemAtoms[J]->operand(0))
        continue;
      ExprRef ElemsEq = eqObj(MemAtoms[I]->operand(1),
                              MemAtoms[J]->operand(1));
      Bridges.push_back(
          F.implies(ElemsEq, F.iff(MemAtoms[I], MemAtoms[J])));
    }

  // Linear integer atom lattice: within one symbol signature, equalities
  // with different constants exclude each other, equalities decide bounds,
  // and the weaker bound follows from the stronger.
  for (size_t J = BridgedIntAtoms; J < IntAtoms.size(); ++J)
    for (size_t I = 0; I != J; ++I) {
      const auto &[AtomA, A] = IntAtoms[I];
      const auto &[AtomB, B] = IntAtoms[J];
      if (A.Signature != B.Signature)
        continue;
      if (A.IsEq && B.IsEq && A.C != B.C)
        Bridges.push_back(F.disj({F.lnot(AtomA), F.lnot(AtomB)}));
      if (A.IsEq && !B.IsEq)
        Bridges.push_back(A.C <= B.C ? F.implies(AtomA, AtomB)
                                     : F.implies(AtomA, F.lnot(AtomB)));
      if (B.IsEq && !A.IsEq)
        Bridges.push_back(B.C <= A.C ? F.implies(AtomB, AtomA)
                                     : F.implies(AtomB, F.lnot(AtomA)));
      if (!A.IsEq && !B.IsEq)
        Bridges.push_back(A.C <= B.C ? F.implies(AtomA, AtomB)
                                     : F.implies(AtomB, AtomA));
    }

  BridgedObjTerms = ObjTerms.size();
  BridgedMapLookups = MapLookups.size();
  BridgedMemAtoms = MemAtoms.size();
  BridgedIntAtoms = IntAtoms.size();

  LiveBridges += static_cast<int64_t>(Bridges.size());
  if (LiveBridges > PeakLiveBridges)
    PeakLiveBridges = LiveBridges;

  for (ExprRef B : Bridges)
    Encoder.assertTrue(normalize(B));
}

void SmtSession::ingest(ExprRef Normalized) {
  collectTheoryAtoms(Normalized);
  // Bridges constrain global atoms and outlive every scope, so their
  // encodings must never land in a retirable scope layer. Under bridge
  // compaction they go to the dedicated bridge layer instead of the root:
  // a root child no lookup chain but its own can reach, so a compaction
  // may drop the whole layer and rebuild it without dangling references.
  Tseitin::LayerId Saved = Encoder.activeLayer();
  Encoder.setActiveLayer(BridgeCompactionEnabled ? BridgeLayer
                                                 : Tseitin::RootLayer);
  emitNewBridges();
  Encoder.setActiveLayer(Saved);
}

void SmtSession::collectBoolAtoms(ExprRef E, std::set<ExprRef> &Out,
                                  std::set<ExprRef> &Visited) {
  if (!Visited.insert(E).second)
    return;
  switch (E->kind()) {
  case ExprKind::ConstBool:
    return;
  case ExprKind::Not:
  case ExprKind::And:
  case ExprKind::Or:
  case ExprKind::Implies:
  case ExprKind::Iff:
    for (ExprRef Op : E->operands())
      collectBoolAtoms(Op, Out, Visited);
    return;
  case ExprKind::Ite:
    if (E->sort() == Sort::Bool) {
      for (ExprRef Op : E->operands())
        collectBoolAtoms(Op, Out, Visited);
      return;
    }
    break;
  default:
    break;
  }
  if (E->sort() == Sort::Bool)
    Out.insert(E);
}

// --- Session top level --------------------------------------------------------

SmtSession::SmtSession(ExprFactory &F) : F(F), Encoder(Sat) {
  Scopes.push_back(ScopeNode{}); // RootScope: unguarded, root layer.
}

void SmtSession::enableCertification() {
  assert(!ProofLog && "certification enabled twice");
  assert(Checks == 0 && Sat.numVars() == 0 &&
         "certification must be enabled before the first assertion");
  ProofLog = std::make_unique<proof::ProofTrace>();
  Sat.setProofTrace(ProofLog.get());
}

const proof::CertifySummary &SmtSession::finishCertification() {
  if (ProofLog && !CertFinished) {
    proof::ProofChecker Checker;
    Cert.fold(Checker.check(*ProofLog));
    CertFinished = true;
  }
  return Cert;
}

void SmtSession::enableBridgeCompaction(size_t MinDead) {
  assert(Checks == 0 && Sat.numVars() == 0 &&
         "bridge compaction must be enabled before the first assertion");
  assert(!BridgeCompactionEnabled && "bridge compaction enabled twice");
  BridgeCompactionEnabled = true;
  BridgeMinDead = MinDead;
  BridgeLayer = Encoder.pushLayer(Tseitin::RootLayer);
}

// --- Cross-shard prefix sharing ----------------------------------------------

namespace {

/// Stable total order for re-sorting pointer-keyed maps into the image.
bool printedBefore(ExprRef A, ExprRef B) {
  return printAbstract(A) < printAbstract(B);
}

template <typename MapT>
std::vector<std::pair<ExprRef, int>> sortedByPrint(const MapT &M) {
  std::vector<std::pair<ExprRef, int>> Out;
  Out.reserve(M.size());
  for (const auto &[E, V] : M) {
    if constexpr (std::is_same_v<std::decay_t<decltype(V)>, Lit>)
      Out.push_back({E, V.Encoded});
    else
      Out.push_back({E, V});
  }
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    return printedBefore(A.first, B.first);
  });
  return Out;
}

} // namespace

PrefixImage SmtSession::exportPrefix() {
  assert(Checks == 0 && "prefix export after checks began");
  assert(Scopes.size() == 1 && "prefix export after scopes were opened");
  assert(Sat.numLearnedClauses() == 0 && "prefix export after search");
  assert(BridgedObjTerms == ObjTerms.size() &&
         BridgedMapLookups == MapLookups.size() &&
         BridgedMemAtoms == MemAtoms.size() &&
         BridgedIntAtoms == IntAtoms.size() &&
         "prefix export with unemitted bridges");

  PrefixImage Img;
  Img.NumVars = Sat.numVars();
  Sat.exportRootState(Img.Clauses, Img.Units);

  Img.Atoms = sortedByPrint(Encoder.atoms());
  Img.RootDefs = sortedByPrint(Encoder.layerCache(Tseitin::RootLayer));
  Img.RootOwned = Encoder.ownedVars(Tseitin::RootLayer);
  Img.HasBridgeLayer = BridgeCompactionEnabled;
  if (BridgeCompactionEnabled) {
    Img.BridgeDefs = sortedByPrint(Encoder.layerCache(BridgeLayer));
    Img.BridgeOwned = Encoder.ownedVars(BridgeLayer);
  }

  Img.ObjTerms = ObjTerms;
  Img.MemAtoms = MemAtoms;
  for (const auto &[Atom, Info] : IntAtoms)
    Img.IntAtoms.push_back({Atom, Info.Signature, Info.IsEq, Info.C});
  Img.BaseAtoms.assign(BaseAtoms.begin(), BaseAtoms.end());
  std::sort(Img.BaseAtoms.begin(), Img.BaseAtoms.end(), printedBefore);
  Img.LiveBridges = LiveBridges;

  PrefixVars = Img.NumVars;
  return Img;
}

void SmtSession::importPrefix(const PrefixImage &Img) {
  assert(Checks == 0 && Sat.numVars() == 0 &&
         "prefix import must be the session's first operation");
  assert(Scopes.size() == 1 && "prefix import after scopes were opened");
  assert(BridgeCompactionEnabled == Img.HasBridgeLayer &&
         "bridge-compaction flag must match the exporting session");

  // Replay the propositional database through the public entry points, so
  // a certifying importer's trace covers every stored clause. All clauses
  // land before the first unit: with the root assignment still empty,
  // nothing is dropped or shortened, and the units then propagate to the
  // exporting session's root fixpoint.
  for (int I = 0; I != Img.NumVars; ++I)
    Sat.addVar();
  std::vector<Lit> C;
  for (const std::vector<int> &Enc : Img.Clauses) {
    C.clear();
    for (int E : Enc) {
      Lit L;
      L.Encoded = E;
      C.push_back(L);
    }
    Sat.addClause(C);
  }
  for (int E : Img.Units) {
    Lit L;
    L.Encoded = E;
    Sat.addClause({L});
  }

  for (const auto &[Atom, Var] : Img.Atoms)
    Encoder.importAtom(Atom, Var);
  for (const auto &[E, Def] : Img.RootDefs) {
    Lit L;
    L.Encoded = Def;
    Encoder.importDefinition(Tseitin::RootLayer, E, L);
  }
  for (int V : Img.RootOwned)
    Encoder.importOwnedVar(Tseitin::RootLayer, V);
  if (Img.HasBridgeLayer) {
    for (const auto &[E, Def] : Img.BridgeDefs) {
      Lit L;
      L.Encoded = Def;
      Encoder.importDefinition(BridgeLayer, E, L);
    }
    for (int V : Img.BridgeOwned)
      Encoder.importOwnedVar(BridgeLayer, V);
  }

  ObjTerms = Img.ObjTerms;
  for (ExprRef T : ObjTerms) {
    ObjTermSet.insert(T);
    if (T->kind() == ExprKind::MapGet)
      MapLookups.push_back(T);
  }
  MemAtoms = Img.MemAtoms;
  MemAtomSet.insert(MemAtoms.begin(), MemAtoms.end());
  for (const PrefixImage::IntAtomEntry &A : Img.IntAtoms) {
    IntAtoms.push_back({A.Atom, {A.Signature, A.IsEq, A.C}});
    IntAtomSeen.insert(A.Atom);
  }
  BaseAtoms.insert(Img.BaseAtoms.begin(), Img.BaseAtoms.end());

  BridgedObjTerms = ObjTerms.size();
  BridgedMapLookups = MapLookups.size();
  BridgedMemAtoms = MemAtoms.size();
  BridgedIntAtoms = IntAtoms.size();
  LiveBridges = Img.LiveBridges;
  if (LiveBridges > PeakLiveBridges)
    PeakLiveBridges = LiveBridges;

  // Every prefix entry is root-owned: permanent under compaction, so the
  // imported variables can never be recycled out from under the exchange.
  if (BridgeCompactionEnabled) {
    for (ExprRef T : ObjTerms)
      EntryOwners[T].insert(RootScope);
    for (ExprRef M : MemAtoms)
      EntryOwners[M].insert(RootScope);
    for (const auto &[Atom, Info] : IntAtoms)
      EntryOwners[Atom].insert(RootScope);
  }

  PrefixVars = Img.NumVars;
}

std::vector<PrefixClause>
SmtSession::exportLearnedPrefixClauses(size_t MaxSize, int MaxGlue) const {
  if (PrefixVars == 0)
    return {};
  return Sat.exportLearnedClauses(PrefixVars, MaxSize, MaxGlue);
}

size_t
SmtSession::importLearnedPrefixClauses(const std::vector<PrefixClause> &In) {
  assert(!certifying() && "clause import would bypass the proof trace");
  if (PrefixVars == 0)
    return 0;
  size_t Adopted = 0;
  for (const PrefixClause &P : In) {
    bool Owned = true;
    for (int E : P.Lits) {
      int V = E > 0 ? E : -E;
      if (V < 1 || V > PrefixVars) {
        Owned = false;
        break;
      }
    }
    if (Owned && Sat.importLearnedClause(P))
      ++Adopted;
  }
  return Adopted;
}

void SmtSession::assertBase(ExprRef E) {
  ExprRef N = normalize(E);
  AttrScope = RootScope;
  ingest(N);
  std::set<ExprRef> Visited;
  collectBoolAtoms(N, BaseAtoms, Visited);
  Tseitin::LayerId Saved = Encoder.activeLayer();
  Encoder.setActiveLayer(Tseitin::RootLayer);
  Encoder.assertTrue(N);
  Encoder.setActiveLayer(Saved);
}

SmtSession::ScopeId SmtSession::openScope(ExprRef Selector, ScopeId Parent,
                                          bool OwnLayer) {
  assert(Parent < Scopes.size() && Scopes[Parent].Alive &&
         "opening a scope under a dead parent");
  assert(ScopeOf.find(Selector) == ScopeOf.end() &&
         "selector already guards a live scope");
  ScopeNode Node;
  Node.Selector = Selector;
  Node.Parent = Parent;
  Node.OwnsLayer = OwnLayer;
  Node.Layer = OwnLayer ? Encoder.pushLayer(Scopes[Parent].Layer)
                        : Scopes[Parent].Layer;
  ScopeId Id = Scopes.size();
  Scopes.push_back(std::move(Node));
  Scopes[Parent].Children.push_back(Id);
  ScopeOf[Selector] = Id;
  if (Audit)
    Audit->openScope(printAbstract(Selector));
  return Id;
}

SmtSession::ScopeId SmtSession::ensureScope(ExprRef Selector, ScopeId Parent) {
  auto It = ScopeOf.find(Selector);
  if (It != ScopeOf.end())
    return It->second;
  return openScope(Selector, Parent, /*OwnLayer=*/false);
}

void SmtSession::assertInScope(ScopeId Scope, ExprRef Body) {
  assert(Scope < Scopes.size() && Scopes[Scope].Alive &&
         "asserting into a dead scope");
  if (Scope == RootScope) {
    assertBase(Body);
    return;
  }
  if (Audit)
    Audit->assertInScope(printAbstract(Scopes[Scope].Selector));
  // Wrap Body in the selector path, innermost first.
  ExprRef Formula = Body;
  for (ScopeId S = Scope; S != RootScope; S = Scopes[S].Parent)
    Formula = F.implies(Scopes[S].Selector, Formula);
  ExprRef N = normalize(Formula);
  AttrScope = Scope;
  ingest(N);
  std::set<ExprRef> Visited;
  collectBoolAtoms(normalize(Body), ScopedAtoms[Scopes[Scope].Selector],
                   Visited);
  Tseitin::LayerId Saved = Encoder.activeLayer();
  Encoder.setActiveLayer(Scopes[Scope].Layer);
  Encoder.assertTrue(N);
  Encoder.setActiveLayer(Saved);
}

void SmtSession::assertScoped(ExprRef Selector, ExprRef Body) {
  assertInScope(ensureScope(Selector, RootScope), Body);
}

void SmtSession::assertScopedUnder(ExprRef Outer, ExprRef Selector,
                                   ExprRef Body) {
  ScopeId Parent = ensureScope(Outer, RootScope);
  auto It = ScopeOf.find(Selector);
  ScopeId Scope = It != ScopeOf.end() ? It->second
                                      : openScope(Selector, Parent,
                                                  /*OwnLayer=*/false);
  assertInScope(Scope, Body);
}

size_t SmtSession::retireScope(ScopeId Scope) {
  assert(Scope != RootScope && "the root scope is permanent");
  assert(Scope < Scopes.size() && Scopes[Scope].Alive &&
         "retiring a dead scope");

  // Collect the subtree: selectors to falsify, owned layers to evict.
  std::vector<ScopeId> Subtree, Stack{Scope};
  while (!Stack.empty()) {
    ScopeId S = Stack.back();
    Stack.pop_back();
    Subtree.push_back(S);
    for (ScopeId C : Scopes[S].Children)
      Stack.push_back(C);
  }
  // Layers owned within the subtree. A subtree node whose cache layer is
  // among them can have its selector *released* rather than pinned false
  // forever: every clause and every cache entry naming the selector dies
  // with the subtree (assertions into a scope encode into its layer, and
  // check()-time encodings land in the innermost active scope's layer),
  // and epoch-tagged selector naming guarantees the expression is never
  // encoded again. Nodes sharing a surviving layer (legacy root-shared
  // scopes) keep today's permanently-false pin.
  std::set<Tseitin::LayerId> SubtreeLayers;
  for (ScopeId S : Subtree)
    if (Scopes[S].OwnsLayer)
      SubtreeLayers.insert(Scopes[S].Layer);

  std::vector<Lit> Selectors, Releasable;
  std::vector<std::pair<ExprRef, int>> ReleasedSelAtoms;
  std::vector<int> ScopeVars;
  Tseitin::LayerId SavedLayer = Encoder.activeLayer();
  for (ScopeId S : Subtree) {
    ScopeNode &Node = Scopes[S];
    // Encode under the node's own layer: the selector atom is already
    // cached on that layer's ancestor chain, so the lookup cannot plant
    // a fresh cache entry in an unrelated live layer — which would
    // dangle once a released selector's variable is recycled.
    Encoder.setActiveLayer(Node.Layer);
    ExprRef SelExpr = normalize(Node.Selector);
    Lit SelLit = Encoder.encode(SelExpr);
    if (SelectorRelease && SubtreeLayers.count(Node.Layer)) {
      Releasable.push_back(SelLit);
      ReleasedSelAtoms.push_back({SelExpr, SelLit.var()});
    } else {
      Selectors.push_back(SelLit);
    }
    if (Node.OwnsLayer) {
      const std::vector<int> &Owned = Encoder.ownedVars(Node.Layer);
      ScopeVars.insert(ScopeVars.end(), Owned.begin(), Owned.end());
    }
    if (Audit)
      Audit->retire(printAbstract(Node.Selector));
  }
  Encoder.setActiveLayer(SavedLayer);

  size_t Evicted = Sat.retireScopes(Selectors, ScopeVars, Releasable);

  // Released selectors whose index actually came free leave the atom map
  // too: a future encode of the same expression (which the epoch naming
  // rules out, but legacy callers could attempt) must mint a fresh
  // variable, never alias the recycled index.
  for (const auto &[SelExpr, V] : ReleasedSelAtoms)
    if (Sat.varIsFree(V))
      Encoder.releaseAtom(SelExpr);

  // Ownership accounting: the subtree's scopes stop owning their registry
  // entries. Entries of a node whose cache layer survives the subtree
  // transfer to the layer's owning scope instead of dying — their cache
  // entries live in that layer, so releasing the atoms any earlier would
  // leave the layer's cache naming a recycled variable.
  if (BridgeCompactionEnabled)
    for (ScopeId S : Subtree) {
      auto SE = ScopeEntries.find(S);
      if (SE == ScopeEntries.end())
        continue;
      bool Survives = !SubtreeLayers.count(Scopes[S].Layer);
      ScopeId Owner = Survives ? layerOwnerScope(S) : RootScope;
      for (ExprRef E : SE->second) {
        auto Own = EntryOwners.find(E);
        if (Own == EntryOwners.end())
          continue;
        Own->second.erase(S);
        if (Survives) {
          if (Own->second.insert(Owner).second && Owner != RootScope)
            ScopeEntries[Owner].push_back(E);
        } else if (Own->second.empty()) {
          DeadEntries.insert(E);
        }
      }
      ScopeEntries.erase(S);
    }

  // Drop the subtree's bookkeeping: layers (leaves before parents, so a
  // parent layer never dies while a child still names it), selector maps,
  // and the tree nodes themselves.
  Encoder.setActiveLayer(Tseitin::RootLayer);
  for (auto It = Subtree.rbegin(); It != Subtree.rend(); ++It) {
    ScopeNode &Node = Scopes[*It];
    if (Node.OwnsLayer)
      Encoder.dropLayer(Node.Layer);
    ScopeOf.erase(Node.Selector);
    ScopedAtoms.erase(Node.Selector);
    Node.Alive = false;
    Node.Children.clear();
  }
  std::vector<ScopeId> &Siblings = Scopes[Scopes[Scope].Parent].Children;
  Siblings.erase(std::remove(Siblings.begin(), Siblings.end(), Scope),
                 Siblings.end());

  // Compact once enough of the theory universe died. The ratio term
  // (dead at least comparable to what survives) amortizes the O(live³)
  // bridge re-emission against the reclaimed universe; the absolute
  // BridgeMinDead term is a backstop for large universes where the ratio
  // alone would let bridge clauses over dead atoms pile up for a long
  // time before half the universe retires.
  if (BridgeCompactionEnabled && !DeadEntries.empty()) {
    size_t Total = ObjTerms.size() + MemAtoms.size() + IntAtoms.size();
    size_t Live = Total - DeadEntries.size();
    if (DeadEntries.size() >= BridgeMinDead ||
        DeadEntries.size() * 2 >= Live)
      Evicted += compactBridges();
  }
  return Evicted;
}

SmtSession::ScopeId SmtSession::layerOwnerScope(ScopeId S) const {
  if (Scopes[S].Layer == Tseitin::RootLayer)
    return RootScope;
  for (ScopeId Cur = S; Cur != RootScope; Cur = Scopes[Cur].Parent)
    if (Scopes[Cur].OwnsLayer && Scopes[Cur].Layer == Scopes[S].Layer)
      return Cur;
  return RootScope;
}

size_t SmtSession::compactBridges() {
  if (!BridgeCompactionEnabled || DeadEntries.empty())
    return 0;

  // Candidate variables: every bridge-encoding definition var, plus the
  // atom vars of dead boolean entries — membership atoms, canonical
  // integer atoms, and equality atoms one of whose operand terms died (a
  // live scope mentioning eq(a,b) registers *both* operands, so a
  // one-sided death proves only bridge clauses still name the atom; any
  // straggler is caught by retireScopes' occurrence check below).
  std::vector<int> Vars = Encoder.ownedVars(BridgeLayer);
  std::vector<std::pair<ExprRef, int>> DeadAtoms;
  for (const auto &[Atom, V] : Encoder.atoms()) {
    bool Dead = DeadEntries.count(Atom) != 0;
    if (!Dead && Atom->kind() == ExprKind::Eq &&
        Atom->operand(0)->sort() == Sort::Obj)
      Dead = DeadEntries.count(Atom->operand(0)) != 0 ||
             DeadEntries.count(Atom->operand(1)) != 0;
    if (Dead) {
      DeadAtoms.push_back({Atom, V});
      Vars.push_back(V);
    }
  }

  // One retirement pass evicts every clause mentioning a candidate and
  // recycles the dead indices — pinned derived units are compacted off
  // the trail with Delete/Recycle proof steps, so --certify still checks.
  size_t Evicted = Sat.retireScopes({}, Vars, {});
  for (const auto &[Atom, V] : DeadAtoms)
    if (Sat.varIsFree(V)) {
      Encoder.releaseAtom(Atom);
      ++ReleasedAtomVars;
    }

  // Replace the bridge layer wholesale: the old cache names released
  // variables.
  Encoder.setActiveLayer(Tseitin::RootLayer);
  Encoder.dropLayer(BridgeLayer);
  BridgeLayer = Encoder.pushLayer(Tseitin::RootLayer);

  // Filter the registries to the survivors (discovery order preserved)
  // and restart the bridge watermarks: the re-emission below asserts
  // exactly the bridge lattice a fresh session would build over the live
  // universe — sound and complete by fresh-session equivalence.
  auto Dead = [this](ExprRef E) { return DeadEntries.count(E) != 0; };
  ObjTerms.erase(std::remove_if(ObjTerms.begin(), ObjTerms.end(), Dead),
                 ObjTerms.end());
  MapLookups.erase(std::remove_if(MapLookups.begin(), MapLookups.end(), Dead),
                   MapLookups.end());
  MemAtoms.erase(std::remove_if(MemAtoms.begin(), MemAtoms.end(), Dead),
                 MemAtoms.end());
  IntAtoms.erase(std::remove_if(
                     IntAtoms.begin(), IntAtoms.end(),
                     [&](const std::pair<ExprRef, detail::IntAtomInfo> &P) {
                       return Dead(P.first);
                     }),
                 IntAtoms.end());
  ObjTermSet = std::set<ExprRef>(ObjTerms.begin(), ObjTerms.end());
  MemAtomSet = std::set<ExprRef>(MemAtoms.begin(), MemAtoms.end());
  IntAtomSeen.clear();
  for (const auto &P : IntAtoms)
    IntAtomSeen.insert(P.first);
  for (ExprRef E : DeadEntries)
    EntryOwners.erase(E);
  DeadEntries.clear();
  BridgedObjTerms = 0;
  BridgedMapLookups = 0;
  BridgedMemAtoms = 0;
  BridgedIntAtoms = 0;

  LiveBridges = 0;
  Encoder.setActiveLayer(BridgeLayer);
  emitNewBridges();
  Encoder.setActiveLayer(Tseitin::RootLayer);

  ++BridgeCompactions;
  assert(Sat.reasonInvariantHolds() && "compaction broke a reason reference");
  return Evicted;
}

size_t SmtSession::retireScope(ExprRef Selector,
                               const std::vector<ExprRef> &SubSelectors) {
  // Sub-selectors registered as tree descendants retire with the subtree;
  // unregistered ones (legacy callers name nested selectors explicitly)
  // are falsified and swept alongside it.
  auto It = ScopeOf.find(Selector);
  if (It == ScopeOf.end()) {
    // Never asserted through the tree: fall back to a direct solver-level
    // retirement over the named selectors.
    Lit SelLit = Encoder.encode(normalize(Selector));
    std::vector<Lit> Selectors{SelLit};
    for (ExprRef S : SubSelectors) {
      Selectors.push_back(Encoder.encode(normalize(S)));
      ScopedAtoms.erase(S);
    }
    ScopedAtoms.erase(Selector);
    return Sat.retireScopes(Selectors, {});
  }
  for (ExprRef S : SubSelectors) {
    auto SubIt = ScopeOf.find(S);
    if (SubIt == ScopeOf.end()) {
      Sat.retireScopes({Encoder.encode(normalize(S))}, {});
      ScopedAtoms.erase(S);
    } else {
      assert(SubIt->second != It->second && "selector nested under itself");
    }
  }
  return retireScope(It->second);
}

SatResult SmtSession::check(const std::vector<ExprRef> &Assumed,
                            int64_t MaxConflicts, ExprRef ActiveScope) {
  std::vector<ExprRef> ActiveSels;
  if (ActiveScope)
    ActiveSels.push_back(ActiveScope);
  return check(Assumed, MaxConflicts, ActiveSels);
}

SmtSession::ScopeId SmtSession::innermostScope(
    const std::vector<ExprRef> &ActiveScopes) const {
  // The deepest registered scope hosts the query encodings: its layer is
  // the first to die, and the query formulas of one scope are never
  // referenced by another (sibling lookups don't cross layers).
  ScopeId Best = RootScope;
  size_t BestDepth = 0;
  for (ExprRef Sel : ActiveScopes) {
    auto It = ScopeOf.find(Sel);
    if (It == ScopeOf.end())
      continue;
    size_t Depth = 0;
    for (ScopeId S = It->second; S != RootScope; S = Scopes[S].Parent)
      ++Depth;
    if (Depth > BestDepth) {
      BestDepth = Depth;
      Best = It->second;
    }
  }
  return Best;
}

void SmtSession::encodeForAudit(const std::vector<ExprRef> &Assumed,
                                const std::vector<ExprRef> &ActiveScopes) {
  if (Audit) {
    std::vector<std::string> Names;
    Names.reserve(ActiveScopes.size());
    for (ExprRef Sel : ActiveScopes)
      Names.push_back(printAbstract(Sel));
    Audit->check(std::move(Names));
  }
  Tseitin::LayerId SavedLayer = Encoder.activeLayer();
  ScopeId Host = innermostScope(ActiveScopes);
  Encoder.setActiveLayer(Scopes[Host].Layer);
  AttrScope = Host;
  for (ExprRef E : Assumed) {
    ExprRef N = normalize(E);
    ingest(N);
    Encoder.encode(N);
  }
  Encoder.setActiveLayer(SavedLayer);
}

SatResult SmtSession::check(const std::vector<ExprRef> &Assumed,
                            int64_t MaxConflicts,
                            const std::vector<ExprRef> &ActiveScopes) {
  if (Audit) {
    std::vector<std::string> Names;
    Names.reserve(ActiveScopes.size());
    for (ExprRef Sel : ActiveScopes)
      Names.push_back(printAbstract(Sel));
    Audit->check(std::move(Names));
  }
  std::vector<Lit> Assumptions;
  Assumptions.reserve(Assumed.size());
  std::set<ExprRef> QueryAtoms, Visited;
  Tseitin::LayerId SavedLayer = Encoder.activeLayer();
  ScopeId Host = innermostScope(ActiveScopes);
  Encoder.setActiveLayer(Scopes[Host].Layer);
  AttrScope = Host;
  for (ExprRef E : Assumed) {
    ExprRef N = normalize(E);
    ingest(N);
    collectBoolAtoms(N, QueryAtoms, Visited);
    Assumptions.push_back(Encoder.encode(N));
  }
  Encoder.setActiveLayer(SavedLayer);

  int64_t ConflictsBefore = Sat.numConflicts();
  int64_t DecisionsBefore = Sat.numDecisions();
  SatResult R = Sat.solve(Assumptions, MaxConflicts);
  ++Checks;

  LastCoreIdx.clear();
  if (R == SatResult::Unsat) {
    std::vector<Lit> Core = Sat.unsatCore();
    // Core-minimizing restarts: re-solving under just the core either
    // confirms it (fixpoint) or returns a strictly smaller one; the
    // refutation's lemmas are retained, so each round is cheap. Bounded by
    // both a round count and the *remainder* of this check's conflict
    // budget, so a check never spends more than MaxConflicts total and
    // 'conflicts per VC' stays comparable to the configured budget.
    for (unsigned Round = 0; Round < CoreMinRounds && Core.size() > 1;
         ++Round) {
      int64_t Remaining = -1;
      if (MaxConflicts >= 0) {
        Remaining = MaxConflicts - (Sat.numConflicts() - ConflictsBefore);
        if (Remaining <= 0)
          break; // The main solve used the whole budget.
      }
      SatResult R2 = Sat.solve(Core, Remaining);
      ++CoreMinSolves;
      if (R2 != SatResult::Unsat)
        break; // Budget exhausted mid-minimization: keep the last core.
      if (Sat.unsatCore().size() >= Core.size()) {
        Core = Sat.unsatCore();
        break; // Fixpoint: the core is locally minimal.
      }
      Core = Sat.unsatCore();
    }
    // Map the minimized core back onto the caller's Assumed vector (first
    // match wins for duplicated formulas).
    for (Lit C : Core)
      for (size_t I = 0; I != Assumptions.size(); ++I)
        if (Assumptions[I] == C) {
          if (std::find(LastCoreIdx.begin(), LastCoreIdx.end(), I) ==
              LastCoreIdx.end())
            LastCoreIdx.push_back(I);
          break;
        }
    std::sort(LastCoreIdx.begin(), LastCoreIdx.end());
    // One certified verdict: the minimized core under the caller's current
    // proof tag. Sat/Unknown checks have no certificate — a countermodel
    // is its own witness, and the engine treats Unknown as a failed proof.
    Sat.logQueryProof(Core);
  }
  LastConflicts = Sat.numConflicts() - ConflictsBefore;
  LastDecisions = Sat.numDecisions() - DecisionsBefore;

  LastModel.clear();
  if (R == SatResult::Sat) {
    // Report only over this check's vocabulary (base + active scopes +
    // current query): a warm session's atom map also holds every earlier
    // query's and every other scope's atoms, which would drown the
    // countermodel in unrelated diagnostics.
    std::vector<const std::set<ExprRef> *> ActiveAtomSets;
    for (ExprRef ActiveScope : ActiveScopes) {
      auto It = ScopedAtoms.find(ActiveScope);
      if (It != ScopedAtoms.end())
        ActiveAtomSets.push_back(&It->second);
    }
    auto InScope = [&ActiveAtomSets](ExprRef Atom) {
      for (const std::set<ExprRef> *S : ActiveAtomSets)
        if (S->count(Atom))
          return true;
      return false;
    };
    for (const auto &[Atom, V] : Encoder.atoms())
      if (Sat.modelValue(V) &&
          (BaseAtoms.count(Atom) || QueryAtoms.count(Atom) || InScope(Atom)))
        LastModel.push_back(printAbstract(Atom));
    // Encoder.atoms() iterates in pointer order, which varies when several
    // threads share the interning factory; sort so diagnostics are stable.
    std::sort(LastModel.begin(), LastModel.end());
  }
  return R;
}

// --- One-shot facade ----------------------------------------------------------

void SmtSolver::assertFormula(ExprRef E) { Asserted.push_back(E); }

SatResult SmtSolver::check(int64_t MaxConflicts) {
  SmtSession Session(F);
  for (ExprRef E : Asserted)
    Session.assertBase(E);
  SatResult R = Session.check({}, MaxConflicts);
  LastConflicts = Session.conflicts();
  LastDecisions = Session.decisions();
  LastNumAtoms = Session.numAtoms();
  LastModel = Session.modelAtoms();
  return R;
}
