//===- smt/SmtSolver.cpp - Eager-encoding SMT facade -------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include "logic/Printer.h"
#include "smt/Tseitin.h"
#include "support/Unreachable.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace semcomm;

// --- Linear integer atom canonicalization -----------------------------------

namespace {

/// A linear combination of opaque integer symbols plus a constant.
struct LinearForm {
  std::map<std::string, std::pair<ExprRef, int64_t>> Coeffs; // key: printed
  int64_t Constant = 0;

  void addSymbol(ExprRef Sym, int64_t C) {
    std::string Key = printAbstract(Sym);
    auto [It, _] = Coeffs.try_emplace(Key, Sym, 0);
    It->second.second += C;
    if (It->second.second == 0)
      Coeffs.erase(It);
  }

  void negate() {
    for (auto &[K, V] : Coeffs)
      V.second = -V.second;
    Constant = -Constant;
  }

  std::string signature() const {
    std::string Sig;
    for (const auto &[K, V] : Coeffs)
      Sig += (V.second >= 0 ? "+" : "") + std::to_string(V.second) + "*" + K;
    return Sig;
  }
};

/// Decomposes an Int-sorted expression into a LinearForm; any
/// non-arithmetic subterm (variable, indexOf, size, counter, ...) is an
/// opaque symbol.
void decompose(ExprRef E, int64_t Sign, LinearForm &Out) {
  switch (E->kind()) {
  case ExprKind::ConstInt:
    Out.Constant += Sign * E->intValue();
    return;
  case ExprKind::Add:
    decompose(E->operand(0), Sign, Out);
    decompose(E->operand(1), Sign, Out);
    return;
  case ExprKind::Sub:
    decompose(E->operand(0), Sign, Out);
    decompose(E->operand(1), -Sign, Out);
    return;
  case ExprKind::Neg:
    decompose(E->operand(0), -Sign, Out);
    return;
  default:
    assert(E->sort() == Sort::Int && "non-integer term in linear form");
    Out.addSymbol(E, Sign);
    return;
  }
}

/// Metadata for a canonicalized integer atom variable.
struct IntAtomInfo {
  std::string Signature; ///< Symbol part (canonical).
  bool IsEq = false;     ///< sum = C when true; sum <= C otherwise.
  int64_t C = 0;
};

} // namespace

/// Per-check scratch state shared through the members below.
static std::map<ExprRef, IntAtomInfo> *CurrentIntAtoms = nullptr;

ExprRef SmtSolver::canonicalIntAtom(ExprKind K, ExprRef A, ExprRef B) {
  // diff = A - B  (for Lt: A < B  <=>  diff <= -1; Le: diff <= 0).
  LinearForm Diff;
  decompose(A, 1, Diff);
  decompose(B, -1, Diff);
  int64_t Bound = -Diff.Constant;
  Diff.Constant = 0;

  if (Diff.Coeffs.empty()) {
    switch (K) {
    case ExprKind::Eq:
      return F.boolConst(0 == Bound);
    case ExprKind::Lt:
      return F.boolConst(0 < Bound);
    case ExprKind::Le:
      return F.boolConst(0 <= Bound);
    default:
      semcomm_unreachable("bad int atom kind");
    }
  }

  bool IsEq = (K == ExprKind::Eq);
  if (K == ExprKind::Lt)
    Bound -= 1; // sum <= Bound - 1.

  // Canonical sign for equalities: least symbol has a positive coefficient.
  if (IsEq && Diff.Coeffs.begin()->second.second < 0) {
    Diff.negate();
    Bound = -Bound;
  }

  std::string Name = std::string(IsEq ? "ieq" : "ile") + "[" +
                     Diff.signature() + "]" + std::to_string(Bound);
  ExprRef Atom = F.var(Name, Sort::Bool);
  if (CurrentIntAtoms)
    (*CurrentIntAtoms)[Atom] = {Diff.signature(), IsEq, Bound};
  return Atom;
}

ExprRef SmtSolver::eqObj(ExprRef A, ExprRef B) {
  if (A == B)
    return F.trueExpr();
  // Lower object-sorted ITEs into the boolean structure.
  if (A->kind() == ExprKind::Ite)
    return F.disj({F.conj({normalize(A->operand(0)),
                           eqObj(A->operand(1), B)}),
                   F.conj({F.lnot(normalize(A->operand(0))),
                           eqObj(A->operand(2), B)})});
  if (B->kind() == ExprKind::Ite)
    return eqObj(B, A);
  // Canonical operand order (printed form is a stable total order).
  if (printAbstract(B) < printAbstract(A))
    std::swap(A, B);
  return F.eq(A, B);
}

ExprRef SmtSolver::normalizeAtom(ExprRef E) {
  switch (E->kind()) {
  case ExprKind::Eq: {
    Sort S = E->operand(0)->sort();
    if (S == Sort::Int)
      return canonicalIntAtom(ExprKind::Eq, E->operand(0), E->operand(1));
    if (S == Sort::Obj)
      return eqObj(E->operand(0), E->operand(1));
    return F.iff(normalize(E->operand(0)), normalize(E->operand(1)));
  }
  case ExprKind::Lt:
    return canonicalIntAtom(ExprKind::Lt, E->operand(0), E->operand(1));
  case ExprKind::Le:
    return canonicalIntAtom(ExprKind::Le, E->operand(0), E->operand(1));
  default:
    // Boolean variables and state-query atoms stay as they are.
    return E;
  }
}

ExprRef SmtSolver::normalize(ExprRef E) {
  switch (E->kind()) {
  case ExprKind::Not:
    return F.lnot(normalize(E->operand(0)));
  case ExprKind::And:
  case ExprKind::Or: {
    std::vector<ExprRef> Ops;
    for (ExprRef Op : E->operands())
      Ops.push_back(normalize(Op));
    return E->kind() == ExprKind::And ? F.conj(std::move(Ops))
                                      : F.disj(std::move(Ops));
  }
  case ExprKind::Implies:
    return F.implies(normalize(E->operand(0)), normalize(E->operand(1)));
  case ExprKind::Iff:
    return F.iff(normalize(E->operand(0)), normalize(E->operand(1)));
  case ExprKind::Ite:
    assert(E->sort() == Sort::Bool && "non-boolean ITE outside an atom");
    return F.ite(normalize(E->operand(0)), normalize(E->operand(1)),
                 normalize(E->operand(2)));
  default:
    return normalizeAtom(E);
  }
}

// --- Bridge generation -------------------------------------------------------

/// Collects object terms and membership atoms from a normalized formula.
static void collectTheoryAtoms(ExprRef E, std::set<ExprRef> &ObjTerms,
                               std::set<ExprRef> &MemAtoms) {
  if (E->kind() == ExprKind::Eq && E->operand(0)->sort() == Sort::Obj) {
    ObjTerms.insert(E->operand(0));
    ObjTerms.insert(E->operand(1));
    return;
  }
  if (E->kind() == ExprKind::SetContains) {
    MemAtoms.insert(E);
    return;
  }
  for (ExprRef Op : E->operands())
    collectTheoryAtoms(Op, ObjTerms, MemAtoms);
}

void SmtSolver::collectBridges(const std::map<ExprRef, int> &,
                               std::vector<ExprRef> &Bridges) {
  std::set<ExprRef> ObjTermSet, MemAtoms;
  for (ExprRef E : Asserted)
    collectTheoryAtoms(normalize(E), ObjTermSet, MemAtoms);

  std::vector<ExprRef> Terms(ObjTermSet.begin(), ObjTermSet.end());
  std::sort(Terms.begin(), Terms.end(), [](ExprRef A, ExprRef B) {
    return printAbstract(A) < printAbstract(B);
  });

  // Equality transitivity over every term triple. The pairwise atoms are
  // created through eqObj so they coincide with the assertion's atoms.
  for (size_t I = 0; I != Terms.size(); ++I)
    for (size_t J = I + 1; J != Terms.size(); ++J)
      for (size_t K = J + 1; K != Terms.size(); ++K) {
        ExprRef AB = eqObj(Terms[I], Terms[J]);
        ExprRef BC = eqObj(Terms[J], Terms[K]);
        ExprRef AC = eqObj(Terms[I], Terms[K]);
        Bridges.push_back(F.implies(F.conj({AB, BC}), AC));
        Bridges.push_back(F.implies(F.conj({AB, AC}), BC));
        Bridges.push_back(F.implies(F.conj({BC, AC}), AB));
      }

  // Congruence for map lookups: equal keys read equal values.
  std::vector<ExprRef> Lookups;
  for (ExprRef T : Terms)
    if (T->kind() == ExprKind::MapGet)
      Lookups.push_back(T);
  for (size_t I = 0; I != Lookups.size(); ++I)
    for (size_t J = I + 1; J != Lookups.size(); ++J) {
      if (Lookups[I]->operand(0) != Lookups[J]->operand(0))
        continue;
      ExprRef KeysEq =
          eqObj(Lookups[I]->operand(1), Lookups[J]->operand(1));
      Bridges.push_back(
          F.implies(KeysEq, eqObj(Lookups[I], Lookups[J])));
    }

  // Congruence for set membership: equal elements agree on membership.
  std::vector<ExprRef> Mems(MemAtoms.begin(), MemAtoms.end());
  for (size_t I = 0; I != Mems.size(); ++I)
    for (size_t J = I + 1; J != Mems.size(); ++J) {
      if (Mems[I]->operand(0) != Mems[J]->operand(0))
        continue;
      ExprRef ElemsEq = eqObj(Mems[I]->operand(1), Mems[J]->operand(1));
      Bridges.push_back(F.implies(ElemsEq, F.iff(Mems[I], Mems[J])));
    }

  // Linear integer atom lattice: within one symbol signature, equalities
  // with different constants exclude each other and interact with bounds.
  std::vector<std::pair<ExprRef, IntAtomInfo>> IntAtoms(
      CurrentIntAtoms->begin(), CurrentIntAtoms->end());
  for (size_t I = 0; I != IntAtoms.size(); ++I)
    for (size_t J = 0; J != IntAtoms.size(); ++J) {
      if (I == J ||
          IntAtoms[I].second.Signature != IntAtoms[J].second.Signature)
        continue;
      const IntAtomInfo &A = IntAtoms[I].second;
      const IntAtomInfo &B = IntAtoms[J].second;
      if (A.IsEq && B.IsEq && I < J && A.C != B.C)
        Bridges.push_back(F.disj({F.lnot(IntAtoms[I].first),
                                  F.lnot(IntAtoms[J].first)}));
      if (A.IsEq && !B.IsEq)
        Bridges.push_back(A.C <= B.C
                              ? F.implies(IntAtoms[I].first,
                                          IntAtoms[J].first)
                              : F.implies(IntAtoms[I].first,
                                          F.lnot(IntAtoms[J].first)));
      if (!A.IsEq && !B.IsEq && I < J && A.C <= B.C)
        Bridges.push_back(
            F.implies(IntAtoms[I].first, IntAtoms[J].first));
    }
}

// --- Top level ----------------------------------------------------------------

void SmtSolver::assertFormula(ExprRef E) { Asserted.push_back(E); }

SatResult SmtSolver::check(int64_t MaxConflicts) {
  std::map<ExprRef, IntAtomInfo> IntAtoms;
  CurrentIntAtoms = &IntAtoms;

  std::vector<ExprRef> Normalized;
  for (ExprRef E : Asserted)
    Normalized.push_back(normalize(E));

  std::vector<ExprRef> Bridges;
  collectBridges({}, Bridges);

  SatSolver Sat;
  Tseitin Encoder(Sat);
  for (ExprRef E : Normalized)
    Encoder.assertTrue(E);
  for (ExprRef B : Bridges)
    Encoder.assertTrue(normalize(B));

  SatResult R = Sat.solve(MaxConflicts);
  LastConflicts = Sat.numConflicts();
  LastDecisions = Sat.numDecisions();
  LastNumAtoms = static_cast<int>(Encoder.atoms().size());

  LastModel.clear();
  if (R == SatResult::Sat)
    for (const auto &[Atom, V] : Encoder.atoms())
      if (Sat.modelValue(V))
        LastModel.push_back(printAbstract(Atom));

  CurrentIntAtoms = nullptr;
  return R;
}
