//===- smt/Tseitin.cpp - Structural CNF encoding ----------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "smt/Tseitin.h"

#include "support/Unreachable.h"

#include <cassert>

using namespace semcomm;

Tseitin::LayerId Tseitin::pushLayer(LayerId Parent) {
  assert(Parent < Layers.size() && Layers[Parent].Alive &&
         "pushLayer under a dead parent");
  Layers.push_back({{}, {}, Parent, true});
  LayerId Id = static_cast<LayerId>(Layers.size()) - 1;
  if (Audit)
    Audit->pushLayer(Id, Parent);
  return Id;
}

void Tseitin::setActiveLayer(LayerId L) {
  assert(L < Layers.size() && Layers[L].Alive && "activating a dead layer");
  Active = L;
}

void Tseitin::dropLayer(LayerId L) {
  assert(L != RootLayer && "the root layer is permanent");
  assert(L != Active && "dropping the active layer");
  if (Audit)
    Audit->dropLayer(L);
  Layers[L].Cache.clear();
  Layers[L].Owned.clear();
  Layers[L].Owned.shrink_to_fit();
  Layers[L].Alive = false;
}

Lit Tseitin::freshDefinition() {
  int V = Solver.addVar();
  Layers[Active].Owned.push_back(V);
  if (Audit)
    Audit->define(Active);
  return Lit(V, true);
}

Lit Tseitin::atomLit(ExprRef Atom) {
  auto It = Atoms.find(Atom);
  if (It != Atoms.end())
    return Lit(It->second, true);
  // Atom vars are global (bridges reference them across scopes), so they
  // are never layer-owned; they leave the table only through an explicit
  // releaseAtom() once the SMT layer proves every referencing scope died.
  int V = Solver.addVar();
  Atoms.emplace(Atom, V);
  return Lit(V, true);
}

const Lit *Tseitin::lookup(ExprRef E) const {
  // Walk the ancestor chain only: a sibling layer's definitions may be
  // evicted with that sibling, so referencing them would dangle.
  LayerId L = Active;
  while (true) {
    const Layer &Lay = Layers[L];
    auto It = Lay.Cache.find(E);
    if (It != Lay.Cache.end()) {
      if (Audit)
        Audit->reference(L, Active);
      return &It->second;
    }
    if (L == RootLayer)
      return nullptr;
    L = Lay.Parent;
  }
}

Lit Tseitin::encode(ExprRef E) {
  if (const Lit *Cached = lookup(E))
    return *Cached;

  Lit Result;
  switch (E->kind()) {
  case ExprKind::ConstBool: {
    // A constant literal: a fresh variable pinned by a unit clause.
    Lit L = freshDefinition();
    Solver.addClause({E->boolValue() ? L : L.negated()});
    Result = L;
    break;
  }
  case ExprKind::Not:
    Result = encode(E->operand(0)).negated();
    break;
  case ExprKind::And: {
    Lit G = freshDefinition();
    std::vector<Lit> Back{G};
    for (ExprRef Op : E->operands()) {
      Lit L = encode(Op);
      Solver.addClause({G.negated(), L});
      Back.push_back(L.negated());
    }
    Solver.addClause(Back);
    Result = G;
    break;
  }
  case ExprKind::Or: {
    Lit G = freshDefinition();
    std::vector<Lit> Fwd{G.negated()};
    for (ExprRef Op : E->operands()) {
      Lit L = encode(Op);
      Solver.addClause({G, L.negated()});
      Fwd.push_back(L);
    }
    Solver.addClause(Fwd);
    Result = G;
    break;
  }
  case ExprKind::Implies: {
    Lit A = encode(E->operand(0));
    Lit B = encode(E->operand(1));
    Lit G = freshDefinition();
    Solver.addClause({G.negated(), A.negated(), B});
    Solver.addClause({G, A});
    Solver.addClause({G, B.negated()});
    Result = G;
    break;
  }
  case ExprKind::Iff: {
    Lit A = encode(E->operand(0));
    Lit B = encode(E->operand(1));
    Lit G = freshDefinition();
    Solver.addClause({G.negated(), A.negated(), B});
    Solver.addClause({G.negated(), A, B.negated()});
    Solver.addClause({G, A, B});
    Solver.addClause({G, A.negated(), B.negated()});
    Result = G;
    break;
  }
  case ExprKind::Ite: {
    assert(E->sort() == Sort::Bool && "only boolean ITE is propositional");
    Lit C = encode(E->operand(0));
    Lit T = encode(E->operand(1));
    Lit F = encode(E->operand(2));
    Lit G = freshDefinition();
    Solver.addClause({G.negated(), C.negated(), T});
    Solver.addClause({G.negated(), C, F});
    Solver.addClause({G, C.negated(), T.negated()});
    Solver.addClause({G, C, F.negated()});
    Result = G;
    break;
  }
  default:
    assert(E->sort() == Sort::Bool && "encoding a non-boolean expression");
    Result = atomLit(E);
    break;
  }

  Layers[Active].Cache.emplace(E, Result);
  return Result;
}
