//===- smt/Tseitin.cpp - Structural CNF encoding ----------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "smt/Tseitin.h"

#include "support/Unreachable.h"

#include <cassert>

using namespace semcomm;

Lit Tseitin::freshDefinition() { return Lit(Solver.addVar(), true); }

Lit Tseitin::atomLit(ExprRef Atom) {
  auto It = Atoms.find(Atom);
  if (It != Atoms.end())
    return Lit(It->second, true);
  int V = Solver.addVar();
  Atoms.emplace(Atom, V);
  return Lit(V, true);
}

Lit Tseitin::encode(ExprRef E) {
  auto Cached = Cache.find(E);
  if (Cached != Cache.end())
    return Cached->second;

  Lit Result;
  switch (E->kind()) {
  case ExprKind::ConstBool: {
    // A constant literal: a fresh variable pinned by a unit clause.
    Lit L = freshDefinition();
    Solver.addClause({E->boolValue() ? L : L.negated()});
    Result = L;
    break;
  }
  case ExprKind::Not:
    Result = encode(E->operand(0)).negated();
    break;
  case ExprKind::And: {
    Lit G = freshDefinition();
    std::vector<Lit> Back{G};
    for (ExprRef Op : E->operands()) {
      Lit L = encode(Op);
      Solver.addClause({G.negated(), L});
      Back.push_back(L.negated());
    }
    Solver.addClause(Back);
    Result = G;
    break;
  }
  case ExprKind::Or: {
    Lit G = freshDefinition();
    std::vector<Lit> Fwd{G.negated()};
    for (ExprRef Op : E->operands()) {
      Lit L = encode(Op);
      Solver.addClause({G, L.negated()});
      Fwd.push_back(L);
    }
    Solver.addClause(Fwd);
    Result = G;
    break;
  }
  case ExprKind::Implies: {
    Lit A = encode(E->operand(0));
    Lit B = encode(E->operand(1));
    Lit G = freshDefinition();
    Solver.addClause({G.negated(), A.negated(), B});
    Solver.addClause({G, A});
    Solver.addClause({G, B.negated()});
    Result = G;
    break;
  }
  case ExprKind::Iff: {
    Lit A = encode(E->operand(0));
    Lit B = encode(E->operand(1));
    Lit G = freshDefinition();
    Solver.addClause({G.negated(), A.negated(), B});
    Solver.addClause({G.negated(), A, B.negated()});
    Solver.addClause({G, A, B});
    Solver.addClause({G, A.negated(), B.negated()});
    Result = G;
    break;
  }
  case ExprKind::Ite: {
    assert(E->sort() == Sort::Bool && "only boolean ITE is propositional");
    Lit C = encode(E->operand(0));
    Lit T = encode(E->operand(1));
    Lit F = encode(E->operand(2));
    Lit G = freshDefinition();
    Solver.addClause({G.negated(), C.negated(), T});
    Solver.addClause({G.negated(), C, F});
    Solver.addClause({G, C.negated(), T.negated()});
    Solver.addClause({G, C, F.negated()});
    Result = G;
    break;
  }
  default:
    assert(E->sort() == Sort::Bool && "encoding a non-boolean expression");
    Result = atomLit(E);
    break;
  }

  Cache.emplace(E, Result);
  return Result;
}
