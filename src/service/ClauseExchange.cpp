//===- service/ClauseExchange.cpp - Cross-shard learned-clause pool ----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "service/ClauseExchange.h"

#include <cassert>

using namespace semcomm;
using namespace semcomm::service;

ClauseExchange::ClauseExchange(size_t NumShards,
                               const ClauseExchangeConfig &Cfg)
    : Cfg(Cfg), Cursors(NumShards, std::vector<size_t>(NumShards, 0)) {
  Buckets.reserve(NumShards);
  for (size_t I = 0; I != NumShards; ++I)
    Buckets.push_back(std::make_unique<Bucket>());
}

void ClauseExchange::publish(size_t Source,
                             const std::vector<PrefixClause> &Clauses) {
  assert(Source < Buckets.size() && "publish from an unknown shard");
  Bucket &B = *Buckets[Source];
  uint64_t Accepted = 0, Refused = 0;
  {
    std::lock_guard<std::mutex> Lock(B.M);
    for (const PrefixClause &P : Clauses) {
      if (P.Lits.empty() || P.Lits.size() > Cfg.MaxSize ||
          P.Glue > Cfg.MaxGlue || B.Clauses.size() >= Cfg.PerShardCap ||
          !B.Keys.insert(P.Lits).second) {
        ++Refused;
        continue;
      }
      B.Clauses.push_back(P);
      ++Accepted;
    }
  }
  Published.fetch_add(Accepted, std::memory_order_relaxed);
  Dropped.fetch_add(Refused, std::memory_order_relaxed);
}

std::vector<PrefixClause> ClauseExchange::collectFor(size_t Consumer) {
  assert(Consumer < Cursors.size() && "collect for an unknown shard");
  std::vector<PrefixClause> Out;
  for (size_t Source = 0; Source != Buckets.size(); ++Source) {
    if (Source == Consumer)
      continue;
    Bucket &B = *Buckets[Source];
    std::lock_guard<std::mutex> Lock(B.M);
    size_t &Cur = Cursors[Consumer][Source];
    for (; Cur < B.Clauses.size(); ++Cur)
      Out.push_back(B.Clauses[Cur]);
  }
  Collected.fetch_add(Out.size(), std::memory_order_relaxed);
  return Out;
}

ClauseExchangeStats ClauseExchange::stats() const {
  ClauseExchangeStats S;
  S.Published = Published.load(std::memory_order_relaxed);
  S.Dropped = Dropped.load(std::memory_order_relaxed);
  S.Collected = Collected.load(std::memory_order_relaxed);
  return S;
}
