//===- service/ClauseExchange.h - Cross-shard learned-clause pool -*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock-striped exchange the sharded verification service trades
/// prefix-level learned clauses through. Every shard owns one append-only
/// *bucket* guarded by its own mutex (publishes from different shards
/// never contend — the lock striping), and every consumer keeps a cursor
/// per bucket, so a collect hands over exactly the clauses published since
/// the consumer's previous collect.
///
/// Determinism: the service publishes at the *end* of a shard's drain and
/// collects at the *start* of the next drain, sequentially in shard-id
/// order, behind the drain barrier. A bucket is therefore only ever
/// appended to by its one owning shard, in an order that is a function of
/// that shard's own (deterministic) request stream — so the sequence of
/// clauses a consumer sees is thread-count invariant, and so are the
/// verdicts and stats of every shard that imports them.
///
/// Clauses are PrefixClause (smt/SatSolver.h): literal-sorted encodings
/// over prefix-owned variables, so the literal vector itself is the dedup
/// key (the service keeps per-shard seen-sets to stop ping-pong re-export;
/// the exchange itself dedups within each bucket).
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SERVICE_CLAUSEEXCHANGE_H
#define SEMCOMM_SERVICE_CLAUSEEXCHANGE_H

#include "smt/SatSolver.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

namespace semcomm {
namespace service {

/// Exchange knobs: what a shard may publish and how much a bucket holds.
struct ClauseExchangeConfig {
  size_t MaxSize = 8;      ///< Max literals per shared clause.
  int MaxGlue = 4;         ///< Max LBD per shared clause.
  size_t PerShardCap = 256; ///< Bucket capacity; overflow is dropped.
};

struct ClauseExchangeStats {
  uint64_t Published = 0; ///< Clauses accepted into buckets.
  uint64_t Dropped = 0;   ///< Rejected: bucket full or bucket duplicate.
  uint64_t Collected = 0; ///< Clauses handed to consumers.
};

/// See file comment. Thread-safety contract: publish() may run from any
/// worker thread (bucket-striped locking); collectFor() must not race a
/// publish into the same consumer's unread range — the service guarantees
/// that by collecting only at drain boundaries, behind the drain barrier.
class ClauseExchange {
public:
  ClauseExchange(size_t NumShards, const ClauseExchangeConfig &Cfg);

  /// Publishes \p Clauses into shard \p Source's bucket. Duplicates
  /// already in the bucket and clauses past the bucket cap are dropped.
  void publish(size_t Source, const std::vector<PrefixClause> &Clauses);

  /// Every clause published by shards other than \p Consumer since the
  /// consumer's last collect, in source-shard-id order then publication
  /// order.
  std::vector<PrefixClause> collectFor(size_t Consumer);

  ClauseExchangeStats stats() const;
  const ClauseExchangeConfig &config() const { return Cfg; }
  size_t numShards() const { return Buckets.size(); }

private:
  struct Bucket {
    std::mutex M;
    std::vector<PrefixClause> Clauses;       ///< Append-only, capped.
    std::set<std::vector<int>> Keys;         ///< Dedup within the bucket.
  };

  ClauseExchangeConfig Cfg;
  std::vector<std::unique_ptr<Bucket>> Buckets; ///< Indexed by source.
  std::vector<std::vector<size_t>> Cursors;     ///< [consumer][source].
  std::atomic<uint64_t> Published{0};
  std::atomic<uint64_t> Dropped{0};
  std::atomic<uint64_t> Collected{0};
};

} // namespace service
} // namespace semcomm

#endif // SEMCOMM_SERVICE_CLAUSEEXCHANGE_H
