//===- service/ShardedVerifyService.cpp - Sharded serving front-end ----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "service/ShardedVerifyService.h"

#include "support/Timing.h"

#include <cassert>

using namespace semcomm;
using namespace semcomm::service;

namespace {

/// Stable 64-bit FNV-1a — the routing hash must not vary across runs,
/// platforms, or standard libraries.
uint64_t fnv1a(const std::string &S, uint64_t H = 1469598103934665603ull) {
  for (char Ch : S) {
    H ^= static_cast<unsigned char>(Ch);
    H *= 1099511628211ull;
  }
  return H;
}

} // namespace

ShardedVerifyService::ShardedVerifyService(
    const Catalog &C, const std::vector<const Family *> &Fams,
    const ShardedServiceConfig &Config)
    : C(C), Fams(Fams), Cfg(Config) {
  if (Cfg.Shards == 0)
    Cfg.Shards = 1;
  // A foreign learned clause has no local derivation, so it can never
  // enter a proof-logged database: certifying shards run without the
  // exchange (prefix sharing is unaffected — the replay is logged).
  if (Cfg.Base.Certify)
    Cfg.ShareClauses = false;
  // Clause sharing rides on the shared prefix: PrefixVars is the
  // ownership bound both sides validate against, so without an imported
  // image there is nothing sound to trade.
  if (!Cfg.SharePrefix || Cfg.Shards <= 1)
    Cfg.ShareClauses = false;

  Stopwatch PlanTimer;
  {
    SymbolicEngine Planner(C.factory(), Cfg.Base.SeqLenBound,
                           Cfg.Base.ConflictBudget,
                           SolveMode::SharedCatalog);
    Plan = Planner.planCatalog(C, Fams);
  }
  PlanMillis = PlanTimer.millis();

  Shards.reserve(Cfg.Shards);
  WarmupMillis.resize(Cfg.Shards, 0);
  for (unsigned S = 0; S != Cfg.Shards; ++S) {
    const PrefixImage *Img =
        (S > 0 && Cfg.SharePrefix && !Prefix.empty()) ? &Prefix : nullptr;
    Stopwatch WarmTimer;
    Shards.push_back(std::make_unique<VerifyService>(C, Fams, Cfg.Base,
                                                     &Plan, Img));
    WarmupMillis[S] = WarmTimer.millis();
    // Shard 0 encoded the prefix from scratch; capture it once for every
    // later shard (the export itself is outside the shard warm-up time —
    // it is the front-end's one-time cost, like the plan).
    if (S == 0 && Cfg.SharePrefix && Cfg.Shards > 1)
      Prefix = Shards[0]->exportPrefix();
  }

  if (Cfg.ShareClauses && Cfg.Shards > 1)
    Exchange = std::make_unique<ClauseExchange>(Cfg.Shards, Cfg.Exchange);
  SeenKeys.resize(Cfg.Shards);
  Published.assign(Cfg.Shards, 0);
  Adopted.assign(Cfg.Shards, 0);
  if (Cfg.Threads > 1)
    Pool = std::make_unique<ThreadPool>(Cfg.Threads);
}

size_t ShardedVerifyService::shardOf(const ServiceRequest &R) const {
  uint64_t H = fnv1a(R.Family);
  if (Cfg.Route == RouteBy::Pair)
    H = fnv1a(R.Op1 + "," + R.Op2, H ^ 0x9e3779b97f4a7c15ull);
  return static_cast<size_t>(H % Shards.size());
}

bool ShardedVerifyService::submit(const ServiceRequest &R,
                                  std::string &Error) {
  return Shards[shardOf(R)]->submit(R, Error);
}

size_t ShardedVerifyService::pending() const {
  size_t N = 0;
  for (const auto &S : Shards)
    N += S->pending();
  return N;
}

void ShardedVerifyService::importForShard(size_t S) {
  std::vector<PrefixClause> Fresh;
  for (PrefixClause &P : Exchange->collectFor(S))
    if (SeenKeys[S].insert(P.Lits).second)
      Fresh.push_back(std::move(P));
  if (!Fresh.empty())
    Adopted[S] += Shards[S]->session().importLearnedPrefixClauses(Fresh);
}

void ShardedVerifyService::publishFromShard(size_t S) {
  std::vector<PrefixClause> Fresh;
  for (PrefixClause &P : Shards[S]->session().exportLearnedPrefixClauses(
           Exchange->config().MaxSize, Exchange->config().MaxGlue))
    if (SeenKeys[S].insert(P.Lits).second)
      Fresh.push_back(std::move(P));
  if (!Fresh.empty()) {
    Published[S] += Fresh.size();
    Exchange->publish(S, Fresh);
  }
}

std::vector<ServiceVerdict> ShardedVerifyService::drain() {
  Stopwatch Timer;
  std::vector<ServiceVerdict> Combined;
  if (pending() == 0)
    return Combined;
  ++Drains;

  // Deterministic import point: adopt the clauses every shard published
  // by the end of the previous drain, sequentially in shard-id order,
  // before any worker starts.
  if (Exchange)
    for (size_t S = 0; S != Shards.size(); ++S)
      importForShard(S);

  std::vector<std::vector<ServiceVerdict>> PerShard(Shards.size());
  auto RunShard = [&](size_t S) {
    PerShard[S] = Shards[S]->drain();
    // Publish from the worker: bucket-striped, own seen-set, and the
    // drain barrier below sequences it before any future collect.
    if (Exchange)
      publishFromShard(S);
  };
  if (Pool) {
    for (size_t S = 0; S != Shards.size(); ++S)
      Pool->submit([&RunShard, S] { RunShard(S); });
    Pool->wait();
  } else {
    for (size_t S = 0; S != Shards.size(); ++S)
      RunShard(S);
  }

  for (std::vector<ServiceVerdict> &Group : PerShard)
    for (ServiceVerdict &V : Group) {
      Combined.push_back(V);
      VerdictLog.push_back(std::move(V));
    }
  ServeMillis += Timer.millis();
  return Combined;
}

ShardedServiceStats ShardedVerifyService::stats() const {
  ShardedServiceStats S;
  S.Requests = VerdictLog.size();
  S.Drains = Drains;
  S.ServeMillis = ServeMillis;
  S.PlanMillis = PlanMillis;
  S.WarmupScratchMillis = PlanMillis + WarmupMillis[0];
  double ImportSum = 0;
  for (size_t I = 0; I != Shards.size(); ++I) {
    ShardStats SS;
    SS.Stats = Shards[I]->stats();
    SS.WarmupMillis = WarmupMillis[I];
    SS.PrefixImported = SS.Stats.Session.PrefixImageLoaded;
    SS.ClausesPublished = Published[I];
    SS.ClausesAdopted = Adopted[I];
    if (SS.PrefixImported)
      ImportSum += WarmupMillis[I];
    S.Shards.push_back(std::move(SS));
  }
  if (Shards.size() > 1 && Cfg.SharePrefix)
    S.WarmupImportMillisAvg =
        ImportSum / static_cast<double>(Shards.size() - 1);
  if (Exchange)
    S.Exchange = Exchange->stats();
  return S;
}

void ShardedVerifyService::resetPeakStats() {
  for (const auto &S : Shards)
    S->resetPeakStats();
}

proof::CertifySummary ShardedVerifyService::finishCertification() {
  proof::CertifySummary Out;
  for (const auto &S : Shards) {
    const proof::CertifySummary &Part = S->finishCertification();
    if (!Part.Checked)
      continue;
    Out.Checked = true;
    Out.Ok = Out.Ok && Part.Ok;
    Out.Steps += Part.Steps;
    Out.Queries += Part.Queries;
    Out.QueriesPassed += Part.QueriesPassed;
    Out.PeakClauses = std::max(Out.PeakClauses, Part.PeakClauses);
    if (Out.Error.empty() && !Part.Error.empty())
      Out.Error = Part.Error;
    for (const auto &[Tag, Passed] : Part.QueryOutcome)
      Out.QueryOutcome.emplace(Tag, Passed);
  }
  return Out;
}

json::Value ShardedVerifyService::snapshot() const {
  json::Value V = json::Value::object();
  V.set("schema", json::Value::integer(2));
  V.set("shards", json::Value::integer(static_cast<int64_t>(Shards.size())));
  V.set("route", json::Value::string(Cfg.Route == RouteBy::Pair ? "pair"
                                                                : "family"));
  V.set("share_prefix", json::Value::boolean(Cfg.SharePrefix));
  V.set("share_clauses", json::Value::boolean(Cfg.ShareClauses));
  V.set("drains", json::Value::integer(static_cast<int64_t>(Drains)));
  V.set("serve_millis", json::Value::number(ServeMillis));

  json::Value Log = json::Value::array();
  for (const ServiceVerdict &SV : VerdictLog) {
    json::Value Row = json::Value::object();
    Row.set("family", json::Value::string(SV.Req.Family));
    Row.set("op1", json::Value::string(SV.Req.Op1));
    Row.set("op2", json::Value::string(SV.Req.Op2));
    Row.set("kind", json::Value::string(serviceKindName(SV.Req.Kind)));
    Row.set("sound", json::Value::boolean(SV.Sound));
    Row.set("complete", json::Value::boolean(SV.Complete));
    Log.push(std::move(Row));
  }
  V.set("log", std::move(Log));

  json::Value ShardSnaps = json::Value::array();
  for (const auto &S : Shards)
    ShardSnaps.push(S->snapshot());
  V.set("shard_snapshots", std::move(ShardSnaps));
  return V;
}

bool ShardedVerifyService::restore(const json::Value &V,
                                   std::string &Error) {
  if (!VerdictLog.empty() || pending() != 0) {
    Error = "restore requires a fresh service (no served or pending "
            "requests)";
    return false;
  }
  const json::Value *Schema = V.find("schema");
  if (!Schema || !Schema->isInt() || Schema->asInt() != 2) {
    Error = "unsupported sharded snapshot schema";
    return false;
  }
  const json::Value *NumShards = V.find("shards");
  if (!NumShards || !NumShards->isInt() ||
      NumShards->asInt() != static_cast<int64_t>(Shards.size())) {
    Error = "snapshot config field 'shards' is " +
            std::string(NumShards && NumShards->isInt()
                            ? std::to_string(NumShards->asInt())
                            : "missing") +
            " but the live service has " + std::to_string(Shards.size());
    return false;
  }
  const json::Value *Route = V.find("route");
  std::string LiveRoute = Cfg.Route == RouteBy::Pair ? "pair" : "family";
  if (!Route || !Route->isString() || Route->asString() != LiveRoute) {
    Error = "snapshot config field 'route' does not match the live "
            "service's ('" +
            LiveRoute + "')";
    return false;
  }

  const json::Value *ShardSnaps = V.find("shard_snapshots");
  if (!ShardSnaps || !ShardSnaps->isArray() ||
      ShardSnaps->size() != Shards.size()) {
    Error = "snapshot has no per-shard snapshots";
    return false;
  }
  for (size_t S = 0; S != Shards.size(); ++S)
    if (!Shards[S]->restore(ShardSnaps->at(S), Error)) {
      Error = "shard " + std::to_string(S) + ": " + Error;
      return false;
    }

  std::vector<ServiceVerdict> Restored;
  const json::Value *Log = V.find("log");
  if (!Log || !Log->isArray()) {
    Error = "snapshot has no verdict log";
    return false;
  }
  for (size_t I = 0; I != Log->size(); ++I) {
    const json::Value &Row = Log->at(I);
    ServiceVerdict SV;
    SV.Req.Family = Row["family"].asString();
    SV.Req.Op1 = Row["op1"].asString();
    SV.Req.Op2 = Row["op2"].asString();
    if (!parseServiceKind(Row["kind"].asString(), SV.Req.Kind)) {
      Error = "snapshot log row " + std::to_string(I) + " has a bad kind";
      return false;
    }
    SV.Sound = Row["sound"].asBool();
    SV.Complete = Row["complete"].asBool();
    Restored.push_back(std::move(SV));
  }
  VerdictLog = std::move(Restored);
  Drains = static_cast<uint64_t>(V["drains"].asInt());
  ServeMillis = V["serve_millis"].asDouble();
  Error.clear();
  return true;
}
