//===- service/ShardedVerifyService.h - Sharded serving front-end -*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// N warm verification sessions behind one submit/drain front-end. Each
/// shard is a full VerifyService (warm CatalogSession, prefix-batched
/// drains, compaction) serving the same catalog; requests are routed to
/// shards by a stable hash of their family (or family+pair — the default,
/// which balances the four-family catalog), and a drain runs every shard's
/// batched drain, on a work-stealing ThreadPool when Threads > 1.
///
/// What makes N shards cheaper than N processes:
///
///  * One catalog plan. planCatalog runs once; every shard serves from
///    the shared read-only plan.
///  * One prefix encoding. Shard 0 asserts the catalog-common prefix +
///    bridge lattice from scratch and exports it as a PrefixImage; every
///    other shard *loads* the image (a propositional replay) instead of
///    re-encoding — the warm-up ratio the bench reports.
///  * Learned-clause import. After its drain, each shard publishes its
///    root-level learned clauses over prefix-owned variables (glue/size
///    capped) into the lock-striped ClauseExchange; at the start of the
///    next drain each shard adopts the other shards' publications. A
///    shard validates variable ownership before adoption (indices within
///    the shared prefix and live), and per-shard seen-sets stop ping-pong
///    re-export. Disabled under Certify: a foreign clause has no local
///    proof derivation.
///
/// Determinism: routing, per-shard serve order, and the exchange protocol
/// (publish at drain end, collect at next drain start, both sequenced in
/// shard-id order around the drain barrier) are all functions of the
/// request stream alone — never of thread scheduling. drain() returns the
/// per-shard verdict groups concatenated in shard-id order, so at a fixed
/// shard count the combined verdict log is byte-identical across thread
/// counts (ShardedServiceTest pins 1 vs 8 threads), and verdict *values*
/// equal the single-session VerifyService reference.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SERVICE_SHARDEDVERIFYSERVICE_H
#define SEMCOMM_SERVICE_SHARDEDVERIFYSERVICE_H

#include "service/ClauseExchange.h"
#include "service/VerifyService.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace semcomm {
namespace service {

/// How requests map to shards. Family keeps a family's whole traffic on
/// one shard (maximal prefix locality, but the four-family catalog can
/// then use at most four shards); Pair hashes family+pair, balancing load
/// across any shard count — the default.
enum class RouteBy : uint8_t { Family, Pair };

/// Front-end construction knobs. Base carries the per-shard session
/// configuration (batching, compaction, certify, budgets).
struct ShardedServiceConfig {
  ServiceConfig Base;
  unsigned Shards = 4;
  /// Worker threads for drains; 1 runs shards sequentially in shard-id
  /// order on the caller's thread. Thread count never changes verdicts,
  /// logs, or per-shard stats — only wall time.
  unsigned Threads = 1;
  RouteBy Route = RouteBy::Pair;
  /// Load shard 0's exported PrefixImage into shards 1..N-1 (off = every
  /// shard re-encodes the prefix; the warm-up baseline).
  bool SharePrefix = true;
  /// Trade learned clauses through the ClauseExchange (forced off under
  /// Base.Certify).
  bool ShareClauses = true;
  ClauseExchangeConfig Exchange;
};

/// Per-shard accounting beyond the shard's own ServiceStats.
struct ShardStats {
  ServiceStats Stats;
  double WarmupMillis = 0;      ///< Shard construction wall time.
  bool PrefixImported = false;  ///< Loaded the image (vs encoded).
  uint64_t ClausesPublished = 0;
  uint64_t ClausesAdopted = 0;
};

struct ShardedServiceStats {
  std::vector<ShardStats> Shards;
  uint64_t Requests = 0;
  uint64_t Drains = 0;
  double ServeMillis = 0;
  /// Warm-up decomposition: the shared planCatalog pass, shard 0's
  /// encode-from-scratch construction, and the average import-path
  /// construction of shards 1..N-1 (0 with one shard). The old
  /// one-process-per-shard world paid Plan + Scratch per shard; the
  /// sharded front-end pays Import.
  double PlanMillis = 0;
  double WarmupScratchMillis = 0; ///< Plan + shard 0 construction.
  double WarmupImportMillisAvg = 0;
  ClauseExchangeStats Exchange;
};

/// The sharded front-end. Not thread-safe at the interface: one caller
/// submits and drains; drains fan out internally.
class ShardedVerifyService {
public:
  ShardedVerifyService(const Catalog &C,
                       const std::vector<const Family *> &Fams,
                       const ShardedServiceConfig &Cfg);

  /// Routes and queues one request (see VerifyService::submit for the
  /// rejection cases).
  bool submit(const ServiceRequest &R, std::string &Error);

  /// Imports pending exchange clauses (shard-id order), drains every
  /// shard (parallel when Threads > 1), publishes fresh learned clauses,
  /// and returns the per-shard verdict groups concatenated in shard-id
  /// order. The combined verdicts are also appended to log().
  std::vector<ServiceVerdict> drain();

  size_t pending() const;
  const std::vector<ServiceVerdict> &log() const { return VerdictLog; }
  const ShardedServiceConfig &config() const { return Cfg; }
  ShardedServiceStats stats() const;
  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }
  /// The shard a request routes to (exposed for tests).
  size_t shardOf(const ServiceRequest &R) const;
  VerifyService &shard(size_t S) { return *Shards[S]; }
  /// The shared prefix image (empty when SharePrefix is off or the
  /// service has a single shard).
  const PrefixImage &prefixImage() const { return Prefix; }

  /// Pass-boundary hook: restarts every shard's peak counters.
  void resetPeakStats();

  bool certifying() const { return Cfg.Base.Certify; }
  /// Folds every shard's certification outcome (each shard's trace is
  /// checked independently — per-shard --certify).
  proof::CertifySummary finishCertification();

  /// Serializes the full sharded image: front-end config, the combined
  /// verdict log, and every shard's own snapshot.
  json::Value snapshot() const;
  /// Restores a snapshot() into a freshly constructed front-end. The
  /// shard count, routing, and every per-shard config must match.
  bool restore(const json::Value &V, std::string &Error);

private:
  /// Collect-and-adopt for one shard (start of drain, shard-id order).
  void importForShard(size_t S);
  /// Export-and-publish for one shard (end of the shard's drain; runs on
  /// the drain worker, bucket-striped).
  void publishFromShard(size_t S);

  const Catalog &C;
  std::vector<const Family *> Fams;
  ShardedServiceConfig Cfg;
  CatalogPlan Plan; ///< Shared, read-only; outlives every shard.
  PrefixImage Prefix;
  std::vector<std::unique_ptr<VerifyService>> Shards;
  std::unique_ptr<ClauseExchange> Exchange; ///< Null unless sharing.
  std::unique_ptr<ThreadPool> Pool;         ///< Null when Threads <= 1.

  /// Clauses this shard has already published or adopted (ping-pong
  /// stopper); only the shard's own import/publish steps touch it.
  std::vector<std::set<std::vector<int>>> SeenKeys;
  std::vector<uint64_t> Published;
  std::vector<uint64_t> Adopted;
  std::vector<double> WarmupMillis;

  std::vector<ServiceVerdict> VerdictLog;
  uint64_t Drains = 0;
  double ServeMillis = 0;
  double PlanMillis = 0;
};

} // namespace service
} // namespace semcomm

#endif // SEMCOMM_SERVICE_SHARDEDVERIFYSERVICE_H
