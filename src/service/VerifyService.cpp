//===- service/VerifyService.cpp - Warm catalog verification service --------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "service/VerifyService.h"

#include "support/Timing.h"

#include <cassert>
#include <utility>

using namespace semcomm;
using namespace semcomm::service;

const char *semcomm::service::serviceKindName(ConditionKind K) {
  switch (K) {
  case ConditionKind::Before:
    return "before";
  case ConditionKind::Between:
    return "between";
  case ConditionKind::After:
    return "after";
  }
  return "before";
}

bool semcomm::service::parseServiceKind(const std::string &Name,
                                        ConditionKind &K) {
  if (Name == "before")
    K = ConditionKind::Before;
  else if (Name == "between")
    K = ConditionKind::Between;
  else if (Name == "after")
    K = ConditionKind::After;
  else
    return false;
  return true;
}

VerifyService::VerifyService(const Catalog &C,
                             const std::vector<const Family *> &Fams,
                             const ServiceConfig &Cfg,
                             const CatalogPlan *SharedPlan,
                             const PrefixImage *Prefix)
    : C(C), Fams(Fams), Cfg(Cfg),
      Eng(C.factory(), Cfg.SeqLenBound, Cfg.ConflictBudget,
          SolveMode::SharedCatalog) {
  if (SharedPlan) {
    Plan = SharedPlan;
  } else {
    OwnedPlan = std::make_unique<CatalogPlan>(Eng.planCatalog(C, Fams));
    Plan = OwnedPlan.get();
  }
  for (size_t I = 0; I != Fams.size(); ++I)
    FamIdxByName.emplace(Fams[I]->Name, I);
  Sess = std::make_unique<CatalogSession>(C.factory(), *Plan,
                                          Cfg.ConflictBudget, Cfg.Certify,
                                          Cfg.CompactBridges,
                                          Cfg.CompactMinDead, Prefix);
  Sess->configureClauseGc(true);
  Sess->session().setSelectorRelease(Cfg.ReleaseSelectors);
}

bool VerifyService::submit(const ServiceRequest &R, std::string &Error) {
  auto FI = FamIdxByName.find(R.Family);
  if (FI == FamIdxByName.end()) {
    Error = "family '" + R.Family + "' is not served by this service";
    return false;
  }
  const ConditionEntry *Entry = nullptr;
  for (const ConditionEntry &E : C.entries(*Fams[FI->second]))
    if (E.op1().Name == R.Op1 && E.op2().Name == R.Op2) {
      Entry = &E;
      break;
    }
  if (!Entry) {
    Error = "no catalog entry for pair (" + R.Op1 + ", " + R.Op2 +
            ") in family " + R.Family;
    return false;
  }
  Pending.push_back({R, FI->second, Entry});
  Error.clear();
  return true;
}

void VerifyService::serveOne(const ResolvedRequest &RR, const PairPlan &PP,
                             std::vector<ServiceVerdict> &Out) {
  size_t KindIdx = static_cast<size_t>(RR.Req.Kind);
  ServiceVerdict V;
  V.Req = RR.Req;
  for (size_t Role = 0; Role != 2; ++Role) {
    const MethodPlan &MP = PP.Methods[2 * KindIdx + Role];
    SymbolicResult R;
    bool Ok = Sess->discharge(RR.FamIdx, PP.Key, MP, R);
    ++MethodsDischarged;
    (Role == 0 ? V.Sound : V.Complete) = Ok;
  }
  Out.push_back(V);
  VerdictLog.push_back(std::move(V));
}

std::vector<ServiceVerdict> VerifyService::drain() {
  Stopwatch Timer;
  std::vector<ServiceVerdict> Out;
  if (Pending.empty())
    return Out;
  ++Drains;

  if (Cfg.Batch) {
    // Group pending requests by family, then by pair, both in
    // first-appearance order: every request of a (family, pair) group is
    // served against one warm pair scope under one freshly built plan,
    // and the scope retires when its group completes.
    struct Group {
      const ConditionEntry *Entry;
      std::vector<const ResolvedRequest *> Reqs;
    };
    std::vector<size_t> FamOrder;
    std::map<size_t, std::vector<Group>> Groups;
    for (const ResolvedRequest &RR : Pending) {
      std::vector<Group> &FamGroups = Groups[RR.FamIdx];
      if (FamGroups.empty())
        FamOrder.push_back(RR.FamIdx);
      Group *G = nullptr;
      for (Group &Cand : FamGroups)
        if (Cand.Entry == RR.Entry) {
          G = &Cand;
          break;
        }
      if (!G) {
        FamGroups.push_back({RR.Entry, {}});
        G = &FamGroups.back();
      }
      G->Reqs.push_back(&RR);
    }
    for (size_t FamIdx : FamOrder)
      for (const Group &G : Groups[FamIdx]) {
        PairPlan PP = Eng.planPair(*G.Entry);
        ++PairGroups;
        BatchedReuses += G.Reqs.size() - 1;
        for (const ResolvedRequest *RR : G.Reqs)
          serveOne(*RR, PP, Out);
        Sess->retirePair(FamIdx, PP.Key);
      }
  } else {
    // FIFO baseline: arrival order, one plan + one pair scope per
    // request, retired immediately — every request pays the full
    // planning and prefix-assertion cost.
    for (const ResolvedRequest &RR : Pending) {
      PairPlan PP = Eng.planPair(*RR.Entry);
      ++PairGroups;
      serveOne(RR, PP, Out);
      Sess->retirePair(RR.FamIdx, PP.Key);
    }
  }

  Pending.clear();
  ServeMillis += Timer.millis();
  return Out;
}

ServiceStats VerifyService::stats() const {
  ServiceStats S;
  S.Requests = VerdictLog.size();
  S.Drains = Drains;
  S.PairGroups = PairGroups;
  S.BatchedReuses = BatchedReuses;
  S.MethodsDischarged = MethodsDischarged;
  S.ServeMillis = ServeMillis;
  S.Session = Sess->stats();
  return S;
}

json::Value VerifyService::snapshot() const {
  json::Value Config = json::Value::object();
  Config.set("batch", json::Value::boolean(Cfg.Batch));
  Config.set("compact_bridges", json::Value::boolean(Cfg.CompactBridges));
  Config.set("release_selectors",
             json::Value::boolean(Cfg.ReleaseSelectors));
  Config.set("certify", json::Value::boolean(Cfg.Certify));
  Config.set("seq_len_bound", json::Value::integer(Cfg.SeqLenBound));
  Config.set("conflict_budget", json::Value::integer(Cfg.ConflictBudget));
  Config.set("compact_min_dead",
             json::Value::integer(static_cast<int64_t>(Cfg.CompactMinDead)));

  json::Value Families = json::Value::array();
  for (const Family *F : Fams)
    Families.push(json::Value::string(F->Name));

  json::Value Log = json::Value::array();
  for (const ServiceVerdict &V : VerdictLog) {
    json::Value Row = json::Value::object();
    Row.set("family", json::Value::string(V.Req.Family));
    Row.set("op1", json::Value::string(V.Req.Op1));
    Row.set("op2", json::Value::string(V.Req.Op2));
    Row.set("kind", json::Value::string(serviceKindName(V.Req.Kind)));
    Row.set("sound", json::Value::boolean(V.Sound));
    Row.set("complete", json::Value::boolean(V.Complete));
    Log.push(std::move(Row));
  }

  json::Value V = json::Value::object();
  V.set("schema", json::Value::integer(1));
  V.set("config", std::move(Config));
  V.set("families", std::move(Families));
  V.set("drains", json::Value::integer(static_cast<int64_t>(Drains)));
  V.set("pair_groups",
        json::Value::integer(static_cast<int64_t>(PairGroups)));
  V.set("batched_reuses",
        json::Value::integer(static_cast<int64_t>(BatchedReuses)));
  V.set("methods_discharged",
        json::Value::integer(static_cast<int64_t>(MethodsDischarged)));
  V.set("serve_millis", json::Value::number(ServeMillis));
  V.set("log", std::move(Log));
  return V;
}

bool VerifyService::restore(const json::Value &V, std::string &Error) {
  if (!VerdictLog.empty() || !Pending.empty()) {
    Error = "restore requires a fresh service (no served or pending "
            "requests)";
    return false;
  }
  const json::Value *Schema = V.find("schema");
  if (!Schema || !Schema->isInt() || Schema->asInt() != 1) {
    Error = "unsupported snapshot schema";
    return false;
  }
  // A snapshot from a differently batched service carries counters
  // (PairGroups, BatchedReuses) this service's drains could never have
  // produced — reject instead of silently mixing disciplines.
  const json::Value *Config = V.find("config");
  const json::Value *Batch = Config ? Config->find("batch") : nullptr;
  if (Batch && Batch->isBool() && Batch->asBool() != Cfg.Batch) {
    Error = std::string("snapshot config field 'batch' is ") +
            (Batch->asBool() ? "true" : "false") +
            " but the live service was built with batch=" +
            (Cfg.Batch ? "true" : "false");
    return false;
  }
  const json::Value *Families = V.find("families");
  if (!Families || !Families->isArray() || Families->size() != Fams.size()) {
    Error = "snapshot family set does not match the service's";
    return false;
  }
  for (size_t I = 0; I != Fams.size(); ++I)
    if (!Families->at(I).isString() ||
        Families->at(I).asString() != Fams[I]->Name) {
      Error = "snapshot family set does not match the service's";
      return false;
    }

  std::vector<ServiceVerdict> Restored;
  const json::Value *Log = V.find("log");
  if (!Log || !Log->isArray()) {
    Error = "snapshot has no verdict log";
    return false;
  }
  for (size_t I = 0; I != Log->size(); ++I) {
    const json::Value &Row = Log->at(I);
    ServiceVerdict SV;
    SV.Req.Family = Row["family"].asString();
    SV.Req.Op1 = Row["op1"].asString();
    SV.Req.Op2 = Row["op2"].asString();
    if (!parseServiceKind(Row["kind"].asString(), SV.Req.Kind)) {
      Error = "snapshot log row " + std::to_string(I) + " has a bad kind";
      return false;
    }
    SV.Sound = Row["sound"].asBool();
    SV.Complete = Row["complete"].asBool();
    Restored.push_back(std::move(SV));
  }

  VerdictLog = std::move(Restored);
  Drains = static_cast<uint64_t>(V["drains"].asInt());
  PairGroups = static_cast<uint64_t>(V["pair_groups"].asInt());
  BatchedReuses = static_cast<uint64_t>(V["batched_reuses"].asInt());
  MethodsDischarged =
      static_cast<uint64_t>(V["methods_discharged"].asInt());
  ServeMillis = V["serve_millis"].asDouble();
  Error.clear();
  return true;
}
