//===- service/VerifyService.h - Warm catalog verification service -*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived verification service over one warm CatalogSession. Clients
/// submit (family, op-pair, condition-kind) requests; drain() serves every
/// pending request against the warm session and returns the verdicts
/// (soundness + completeness — the condition kind's two testing methods).
///
/// Serving discipline:
///
///  * Prefix batching (the default): pending requests are grouped by
///    family, then by op-pair, in first-appearance order. A pair's plan is
///    built once per group, its scope opened once, every request of the
///    group discharged against the warm pair scope, and the scope retired
///    when the group completes — so N same-pair requests pay one planning
///    + prefix-assertion cost instead of N. The FIFO baseline (Batch =
///    false) serves arrival order, re-planning and re-opening the pair
///    scope per request; the requests/sec delta between the two is the
///    number the bench harness reports.
///
///  * Long-horizon compaction: with CompactBridges (the default) the
///    session reference-counts theory atoms by the scopes that mention
///    them and compacts dead bridges out of the clause database; with
///    ReleaseSelectors retired scopes' epoch-interned selector variables
///    are folded off the trail and recycled. Together they make the
///    service loop unbounded: live clauses, live variables, and live
///    bridges plateau after the first full catalog pass instead of
///    growing with the request count.
///
///  * Snapshot / reload: snapshot() serializes the service image (config,
///    cumulative statistics, the verdict log) to JSON; restore() loads it
///    into a freshly constructed service. The warm solver state itself is
///    deliberately not serialized — it is a deterministic function of the
///    catalog, so a reloaded service re-warms lazily as requests arrive
///    while its counters and log continue from the snapshot.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SERVICE_VERIFYSERVICE_H
#define SEMCOMM_SERVICE_VERIFYSERVICE_H

#include "commute/SymbolicEngine.h"
#include "support/Json.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace semcomm {
namespace service {

/// One verification request: decide the \p Kind commutativity condition of
/// the ordered pair (\p Op1, \p Op2) in \p Family.
struct ServiceRequest {
  std::string Family;
  std::string Op1, Op2;
  ConditionKind Kind = ConditionKind::Before;
};

/// The served outcome of one request: the verdicts of the condition's two
/// testing methods.
struct ServiceVerdict {
  ServiceRequest Req;
  bool Sound = false;
  bool Complete = false;
  bool verified() const { return Sound && Complete; }
};

/// Service construction knobs.
struct ServiceConfig {
  bool Batch = true;            ///< Prefix-batched drains (vs. FIFO).
  bool CompactBridges = true;   ///< Bridge compaction on the warm session.
  bool ReleaseSelectors = true; ///< Fold retired selectors off the trail.
  bool Certify = false;         ///< DRAT proof logging + RUP checking.
  int SeqLenBound = 3;          ///< ArrayList case-split bound.
  int64_t ConflictBudget = 200000; ///< Per-VC CDCL conflict budget.
  size_t CompactMinDead = 64; ///< Dead-entry floor for a compaction pass.
};

/// Cumulative service statistics plus a snapshot of the warm session's
/// solver accounting.
struct ServiceStats {
  uint64_t Requests = 0; ///< Requests served over the service lifetime.
  uint64_t Drains = 0;
  /// Pair scopes opened to serve requests. Under batching this counts
  /// groups; under FIFO it equals Requests — the gap is the work prefix
  /// batching saved.
  uint64_t PairGroups = 0;
  /// Requests served against a pair scope another request of the same
  /// drain already opened (zero under FIFO).
  uint64_t BatchedReuses = 0;
  uint64_t MethodsDischarged = 0;
  double ServeMillis = 0; ///< Wall time spent inside drain().
  CatalogSessionStats Session;
};

/// The warm verification service. Not thread-safe: one service, one
/// caller (the request loop of tools/ServeMain.cpp).
class VerifyService {
public:
  /// \p Fams must be a subset of \p C's families and outlive the service;
  /// the catalog (and its factory) must outlive it too.
  VerifyService(const Catalog &C, const std::vector<const Family *> &Fams,
                const ServiceConfig &Cfg)
      : VerifyService(C, Fams, Cfg, nullptr, nullptr) {}
  /// Shard constructor (ShardedVerifyService): a non-null \p SharedPlan
  /// replaces the per-service planCatalog pass (it must be the plan for
  /// exactly this \p C / \p Fams and outlive the service), and a non-null
  /// \p Prefix makes the warm session *load* the pre-encoded catalog
  /// prefix instead of re-encoding it.
  VerifyService(const Catalog &C, const std::vector<const Family *> &Fams,
                const ServiceConfig &Cfg, const CatalogPlan *SharedPlan,
                const PrefixImage *Prefix);
  VerifyService(const VerifyService &) = delete;
  VerifyService &operator=(const VerifyService &) = delete;

  /// Captures the warm session's catalog-common prefix for sibling shards
  /// (legal only before the first drain; see SmtSession::exportPrefix).
  PrefixImage exportPrefix() { return Sess->exportPrefix(); }
  /// The catalog plan this service serves from (shared across shards).
  const CatalogPlan &plan() const { return *Plan; }

  /// Queues one request. Returns false — with \p Error set — when the
  /// family is not served or the pair has no catalog entry.
  bool submit(const ServiceRequest &R, std::string &Error);

  /// Serves every pending request and returns their verdicts in the order
  /// served (grouped under batching, arrival order under FIFO). The
  /// verdicts are also appended to log().
  std::vector<ServiceVerdict> drain();

  size_t pending() const { return Pending.size(); }
  const std::vector<ServiceVerdict> &log() const { return VerdictLog; }
  const ServiceConfig &config() const { return Cfg; }
  ServiceStats stats() const;

  /// The warm session's solver, exposed so callers can assert invariants
  /// (reasonInvariantHolds) after compacting drains.
  SmtSession &session() { return Sess->session(); }

  /// Restarts the per-pass peak counters (live vars / clauses / bridges)
  /// from the current live counts — called between catalog passes so the
  /// plateau criterion compares per-pass peaks.
  void resetPeakStats() { Sess->resetPeakStats(); }

  bool certifying() const { return Sess->certifying(); }
  /// Checks the warm session's proof trace (idempotent; meaningful only
  /// when Cfg.Certify).
  const proof::CertifySummary &finishCertification() {
    return Sess->finishCertification();
  }

  /// Serializes the service image: config, cumulative statistics, and the
  /// verdict log.
  json::Value snapshot() const;
  /// Restores counters and the verdict log from a snapshot(). The
  /// snapshot's config and family set must match this service's. Pending
  /// requests are unaffected; the warm solver re-warms lazily.
  bool restore(const json::Value &V, std::string &Error);

private:
  struct ResolvedRequest {
    ServiceRequest Req;
    size_t FamIdx = 0;             ///< Index into Fams / the catalog plan.
    const ConditionEntry *Entry = nullptr;
  };

  /// Discharges \p RR's two testing methods out of \p PP against the warm
  /// pair scope and appends the verdict.
  void serveOne(const ResolvedRequest &RR, const PairPlan &PP,
                std::vector<ServiceVerdict> &Out);

  const Catalog &C;
  std::vector<const Family *> Fams;
  ServiceConfig Cfg;
  SymbolicEngine Eng;
  /// Owned plan for standalone services; null when a shard serves from
  /// the front-end's shared plan.
  std::unique_ptr<CatalogPlan> OwnedPlan;
  const CatalogPlan *Plan; ///< Pairs unmaterialized; must outlive Sess.
  std::unique_ptr<CatalogSession> Sess;
  std::map<std::string, size_t> FamIdxByName;

  std::vector<ResolvedRequest> Pending;
  std::vector<ServiceVerdict> VerdictLog;
  uint64_t Drains = 0;
  uint64_t PairGroups = 0;
  uint64_t BatchedReuses = 0;
  uint64_t MethodsDischarged = 0;
  double ServeMillis = 0;
};

/// Round-trip helpers for ConditionKind in request/snapshot JSON
/// ("before" / "between" / "after"; parse returns false on anything else).
const char *serviceKindName(ConditionKind K);
bool parseServiceKind(const std::string &Name, ConditionKind &K);

} // namespace service
} // namespace semcomm

#endif // SEMCOMM_SERVICE_VERIFYSERVICE_H
