//===- spec/ArrayListFamily.cpp - ArrayList operation specs ---------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The ArrayList interface (Ch. 5): a map from a dense integer range to
/// objects with add_at(i, v), get(i), indexOf(v), lastIndexOf(v),
/// remove_at(i), set(i, v), size(). remove_at and set come in recorded- and
/// discarded-return variants, yielding 9 operations.
///
/// Index preconditions follow java.util.List: add_at admits 0 <= i <= size;
/// the element accessors admit 0 <= i < size. These preconditions *do*
/// depend on the abstract state, which is why reverse-order precondition
/// checks appear in the ArrayList commutativity conditions.
///
//===----------------------------------------------------------------------===//

#include "spec/Family.h"

using namespace semcomm;

static bool indexWithin(const AbstractState &S, const ArgList &Args) {
  int64_t I = Args[0].asInt();
  return I >= 0 && I < S.seqLen();
}

static Operation makeRemoveAt(const std::string &Name, bool Records) {
  Operation Op;
  Op.Name = Name;
  Op.CallName = "remove_at";
  Op.ArgSorts = {Sort::Int};
  Op.ArgBaseNames = {"i"};
  Op.ReturnSort = Sort::Obj;
  Op.HasReturn = true;
  Op.RecordsReturn = Records;
  Op.Mutates = true;
  Op.Pre = indexWithin;
  Op.Apply = [](AbstractState &S, const ArgList &Args) {
    return S.seqRemove(Args[0].asInt());
  };
  return Op;
}

static Operation makeSet(const std::string &Name, bool Records) {
  Operation Op;
  Op.Name = Name;
  Op.CallName = "set";
  Op.ArgSorts = {Sort::Int, Sort::Obj};
  Op.ArgBaseNames = {"i", "v"};
  Op.ReturnSort = Sort::Obj;
  Op.HasReturn = true;
  Op.RecordsReturn = Records;
  Op.Mutates = true;
  Op.Pre = indexWithin;
  Op.Apply = [](AbstractState &S, const ArgList &Args) {
    return S.seqSet(Args[0].asInt(), Args[1]);
  };
  return Op;
}

static Family makeArrayListFamily() {
  Family F;
  F.Name = "ArrayList";
  F.Kind = StateKind::Seq;
  F.StructureNames = {"ArrayList"};

  Operation AddAt;
  AddAt.Name = "add_at";
  AddAt.CallName = "add_at";
  AddAt.ArgSorts = {Sort::Int, Sort::Obj};
  AddAt.ArgBaseNames = {"i", "v"};
  AddAt.HasReturn = false;
  AddAt.RecordsReturn = false;
  AddAt.Mutates = true;
  AddAt.Pre = [](const AbstractState &S, const ArgList &Args) {
    int64_t I = Args[0].asInt();
    return I >= 0 && I <= S.seqLen();
  };
  AddAt.Apply = [](AbstractState &S, const ArgList &Args) {
    S.seqInsert(Args[0].asInt(), Args[1]);
    return Value::null();
  };
  F.Ops.push_back(AddAt);

  Operation Get;
  Get.Name = "get";
  Get.CallName = "get";
  Get.ArgSorts = {Sort::Int};
  Get.ArgBaseNames = {"i"};
  Get.ReturnSort = Sort::Obj;
  Get.HasReturn = true;
  Get.RecordsReturn = true;
  Get.Mutates = false;
  Get.Pre = indexWithin;
  Get.Apply = [](AbstractState &S, const ArgList &Args) {
    return S.seqAt(Args[0].asInt());
  };
  F.Ops.push_back(Get);

  Operation IndexOf;
  IndexOf.Name = "indexOf";
  IndexOf.CallName = "indexOf";
  IndexOf.ArgSorts = {Sort::Obj};
  IndexOf.ArgBaseNames = {"v"};
  IndexOf.ReturnSort = Sort::Int;
  IndexOf.HasReturn = true;
  IndexOf.RecordsReturn = true;
  IndexOf.Mutates = false;
  IndexOf.Pre = [](const AbstractState &, const ArgList &) { return true; };
  IndexOf.Apply = [](AbstractState &S, const ArgList &Args) {
    return Value::integer(S.seqIndexOf(Args[0]));
  };
  F.Ops.push_back(IndexOf);

  Operation LastIndexOf;
  LastIndexOf.Name = "lastIndexOf";
  LastIndexOf.CallName = "lastIndexOf";
  LastIndexOf.ArgSorts = {Sort::Obj};
  LastIndexOf.ArgBaseNames = {"v"};
  LastIndexOf.ReturnSort = Sort::Int;
  LastIndexOf.HasReturn = true;
  LastIndexOf.RecordsReturn = true;
  LastIndexOf.Mutates = false;
  LastIndexOf.Pre = [](const AbstractState &, const ArgList &) {
    return true;
  };
  LastIndexOf.Apply = [](AbstractState &S, const ArgList &Args) {
    return Value::integer(S.seqLastIndexOf(Args[0]));
  };
  F.Ops.push_back(LastIndexOf);

  F.Ops.push_back(makeRemoveAt("remove_at", /*Records=*/true));
  F.Ops.push_back(makeRemoveAt("remove_at_", /*Records=*/false));
  F.Ops.push_back(makeSet("set", /*Records=*/true));
  F.Ops.push_back(makeSet("set_", /*Records=*/false));

  Operation Size;
  Size.Name = "size";
  Size.CallName = "size";
  Size.ReturnSort = Sort::Int;
  Size.HasReturn = true;
  Size.RecordsReturn = true;
  Size.Mutates = false;
  Size.Pre = [](const AbstractState &, const ArgList &) { return true; };
  Size.Apply = [](AbstractState &S, const ArgList &) {
    return Value::integer(S.size());
  };
  F.Ops.push_back(Size);

  return F;
}

const Family &semcomm::arrayListFamily() {
  static Family F = makeArrayListFamily();
  return F;
}
