//===- spec/MapFamily.cpp - AssociationList/HashTable operation specs -----===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The Map interface of AssociationList and HashTable (Ch. 5):
/// containsKey(k), get(k), put(k, v), remove(k), size(). put and remove come
/// in recorded- and discarded-return variants, yielding 7 operations.
///
//===----------------------------------------------------------------------===//

#include "spec/Family.h"

using namespace semcomm;

static Operation makePut(const std::string &Name, bool Records) {
  Operation Op;
  Op.Name = Name;
  Op.CallName = "put";
  Op.ArgSorts = {Sort::Obj, Sort::Obj};
  Op.ArgBaseNames = {"k", "v"};
  Op.ReturnSort = Sort::Obj;
  Op.HasReturn = true;
  Op.RecordsReturn = Records;
  Op.Mutates = true;
  Op.Pre = [](const AbstractState &, const ArgList &) { return true; };
  Op.Apply = [](AbstractState &S, const ArgList &Args) {
    return S.mapPut(Args[0], Args[1]);
  };
  return Op;
}

static Operation makeMapRemove(const std::string &Name, bool Records) {
  Operation Op;
  Op.Name = Name;
  Op.CallName = "remove";
  Op.ArgSorts = {Sort::Obj};
  Op.ArgBaseNames = {"k"};
  Op.ReturnSort = Sort::Obj;
  Op.HasReturn = true;
  Op.RecordsReturn = Records;
  Op.Mutates = true;
  Op.Pre = [](const AbstractState &, const ArgList &) { return true; };
  Op.Apply = [](AbstractState &S, const ArgList &Args) {
    return S.mapErase(Args[0]);
  };
  return Op;
}

static Family makeMapFamily() {
  Family F;
  F.Name = "Map";
  F.Kind = StateKind::Map;
  F.StructureNames = {"AssociationList", "HashTable"};

  Operation ContainsKey;
  ContainsKey.Name = "containsKey";
  ContainsKey.CallName = "containsKey";
  ContainsKey.ArgSorts = {Sort::Obj};
  ContainsKey.ArgBaseNames = {"k"};
  ContainsKey.ReturnSort = Sort::Bool;
  ContainsKey.HasReturn = true;
  ContainsKey.RecordsReturn = true;
  ContainsKey.Mutates = false;
  ContainsKey.Pre = [](const AbstractState &, const ArgList &) {
    return true;
  };
  ContainsKey.Apply = [](AbstractState &S, const ArgList &Args) {
    return Value::boolean(S.mapHasKey(Args[0]));
  };
  F.Ops.push_back(ContainsKey);

  Operation Get;
  Get.Name = "get";
  Get.CallName = "get";
  Get.ArgSorts = {Sort::Obj};
  Get.ArgBaseNames = {"k"};
  Get.ReturnSort = Sort::Obj;
  Get.HasReturn = true;
  Get.RecordsReturn = true;
  Get.Mutates = false;
  Get.Pre = [](const AbstractState &, const ArgList &) { return true; };
  Get.Apply = [](AbstractState &S, const ArgList &Args) {
    return S.mapGet(Args[0]);
  };
  F.Ops.push_back(Get);

  F.Ops.push_back(makePut("put", /*Records=*/true));
  F.Ops.push_back(makePut("put_", /*Records=*/false));
  F.Ops.push_back(makeMapRemove("remove", /*Records=*/true));
  F.Ops.push_back(makeMapRemove("remove_", /*Records=*/false));

  Operation Size;
  Size.Name = "size";
  Size.CallName = "size";
  Size.ReturnSort = Sort::Int;
  Size.HasReturn = true;
  Size.RecordsReturn = true;
  Size.Mutates = false;
  Size.Pre = [](const AbstractState &, const ArgList &) { return true; };
  Size.Apply = [](AbstractState &S, const ArgList &) {
    return Value::integer(S.size());
  };
  F.Ops.push_back(Size);

  return F;
}

const Family &semcomm::mapFamily() {
  static Family F = makeMapFamily();
  return F;
}
