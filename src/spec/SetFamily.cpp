//===- spec/SetFamily.cpp - ListSet/HashSet operation specs ---------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The Set interface of ListSet and HashSet (Fig. 2-1, Ch. 5): add(v),
/// contains(v), remove(v), size(). The updating operations add and remove
/// come in recorded- and discarded-return variants ("add" / "add_"),
/// yielding the paper's 6 operations.
///
//===----------------------------------------------------------------------===//

#include "spec/Family.h"

using namespace semcomm;

/// Builds one of add/add_/remove/remove_.
static Operation makeSetUpdate(const std::string &Name, bool Records,
                               bool IsAdd) {
  Operation Op;
  Op.Name = Name;
  Op.CallName = IsAdd ? "add" : "remove";
  Op.ArgSorts = {Sort::Obj};
  Op.ArgBaseNames = {"v"};
  Op.ReturnSort = Sort::Bool;
  Op.HasReturn = true;
  Op.RecordsReturn = Records;
  Op.Mutates = true;
  Op.Pre = [](const AbstractState &, const ArgList &) { return true; };
  if (IsAdd)
    Op.Apply = [](AbstractState &S, const ArgList &Args) {
      return Value::boolean(S.setInsert(Args[0]));
    };
  else
    Op.Apply = [](AbstractState &S, const ArgList &Args) {
      return Value::boolean(S.setErase(Args[0]));
    };
  return Op;
}

static Family makeSetFamily() {
  Family F;
  F.Name = "Set";
  F.Kind = StateKind::Set;
  F.StructureNames = {"ListSet", "HashSet"};

  F.Ops.push_back(makeSetUpdate("add", /*Records=*/true, /*IsAdd=*/true));
  F.Ops.push_back(makeSetUpdate("add_", /*Records=*/false, /*IsAdd=*/true));

  Operation Contains;
  Contains.Name = "contains";
  Contains.CallName = "contains";
  Contains.ArgSorts = {Sort::Obj};
  Contains.ArgBaseNames = {"v"};
  Contains.ReturnSort = Sort::Bool;
  Contains.HasReturn = true;
  Contains.RecordsReturn = true;
  Contains.Mutates = false;
  Contains.Pre = [](const AbstractState &, const ArgList &) { return true; };
  Contains.Apply = [](AbstractState &S, const ArgList &Args) {
    return Value::boolean(S.contains(Args[0]));
  };
  F.Ops.push_back(Contains);

  F.Ops.push_back(makeSetUpdate("remove", /*Records=*/true, /*IsAdd=*/false));
  F.Ops.push_back(
      makeSetUpdate("remove_", /*Records=*/false, /*IsAdd=*/false));

  Operation Size;
  Size.Name = "size";
  Size.CallName = "size";
  Size.ReturnSort = Sort::Int;
  Size.HasReturn = true;
  Size.RecordsReturn = true;
  Size.Mutates = false;
  Size.Pre = [](const AbstractState &, const ArgList &) { return true; };
  Size.Apply = [](AbstractState &S, const ArgList &) {
    return Value::integer(S.size());
  };
  F.Ops.push_back(Size);

  return F;
}

const Family &semcomm::setFamily() {
  static Family F = makeSetFamily();
  return F;
}
