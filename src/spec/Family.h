//===- spec/Family.h - Data structure families and scopes -------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Family bundles the operation specifications shared by data structures
/// implementing the same interface; the paper's counting conventions (§5.1)
/// follow from the four families:
///
///   Accumulator (2 ops)   — Accumulator
///   Set         (6 ops)   — ListSet, HashSet
///   Map         (7 ops)   — AssociationList, HashTable
///   ArrayList   (9 ops)   — ArrayList
///
/// giving 3*2^2 + 2*3*6^2 + 2*3*7^2 + 3*9^2 = 765 commutativity conditions.
///
/// Scope describes the finite universe the exhaustive engine enumerates; see
/// DESIGN.md §4.1 for the small-scope adequacy argument.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SPEC_FAMILY_H
#define SEMCOMM_SPEC_FAMILY_H

#include "spec/Operation.h"

#include <string>
#include <vector>

namespace semcomm {

/// The operations and metadata shared by structures of one interface.
struct Family {
  /// Interface name: "Accumulator", "Set", "Map", "ArrayList".
  std::string Name;

  /// Theory of the abstract state.
  StateKind Kind;

  /// The verified structures exporting this interface (ListSet and HashSet
  /// share the Set conditions, etc.).
  std::vector<std::string> StructureNames;

  /// All operation variants (recorded and discarded), in table order.
  std::vector<Operation> Ops;

  /// The initial abstract state of a freshly constructed structure.
  AbstractState emptyState() const;

  /// Finds an operation variant by Name; aborts if absent.
  const Operation &op(const std::string &Name) const;

  /// Index of an operation variant by Name; aborts if absent.
  unsigned opIndex(const std::string &Name) const;
};

/// Finite enumeration bounds for the exhaustive engine.
struct Scope {
  int SetUniverse = 4;  ///< Distinct objects for set elements.
  int MapKeys = 3;      ///< Distinct keys.
  int MapVals = 3;      ///< Distinct values.
  int SeqVals = 3;      ///< Distinct sequence elements.
  int MaxSeqLen = 4;    ///< Maximum ArrayList length enumerated.
  int CounterRange = 2; ///< Counter values / increments in [-R, R].
};

/// All abstract states of \p F's theory within \p S.
std::vector<AbstractState> enumerateStates(const Family &F, const Scope &S);

/// All argument tuples for \p Op when the *initial* state of the scenario is
/// \p Initial (index arguments range over [0, len+1] so that a second
/// operation applied after an insertion is fully covered; preconditions
/// filter the rest).
std::vector<ArgList> enumerateArgs(const Family &F, const Operation &Op,
                                   const AbstractState &Initial,
                                   const Scope &S);

// Singleton family definitions (constructed on first use).
const Family &accumulatorFamily();
const Family &setFamily();
const Family &mapFamily();
const Family &arrayListFamily();

/// The four families in the paper's presentation order.
std::vector<const Family *> allFamilies();

} // namespace semcomm

#endif // SEMCOMM_SPEC_FAMILY_H
