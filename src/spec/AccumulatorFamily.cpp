//===- spec/AccumulatorFamily.cpp - Accumulator operation specs -----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The Accumulator (Ch. 5) maintains a counter with increase(v) and read().
///
//===----------------------------------------------------------------------===//

#include "spec/Family.h"

using namespace semcomm;

static Family makeAccumulatorFamily() {
  Family F;
  F.Name = "Accumulator";
  F.Kind = StateKind::Counter;
  F.StructureNames = {"Accumulator"};

  Operation Increase;
  Increase.Name = "increase";
  Increase.CallName = "increase";
  Increase.ArgSorts = {Sort::Int};
  Increase.ArgBaseNames = {"v"};
  Increase.HasReturn = false;
  Increase.RecordsReturn = false;
  Increase.Mutates = true;
  Increase.Pre = [](const AbstractState &, const ArgList &) { return true; };
  Increase.Apply = [](AbstractState &S, const ArgList &Args) {
    S.increase(Args[0].asInt());
    return Value::null();
  };
  F.Ops.push_back(Increase);

  Operation Read;
  Read.Name = "read";
  Read.CallName = "read";
  Read.ReturnSort = Sort::Int;
  Read.HasReturn = true;
  Read.RecordsReturn = true;
  Read.Mutates = false;
  Read.Pre = [](const AbstractState &, const ArgList &) { return true; };
  Read.Apply = [](AbstractState &S, const ArgList &) {
    return Value::integer(S.counter());
  };
  F.Ops.push_back(Read);

  return F;
}

const Family &semcomm::accumulatorFamily() {
  static Family F = makeAccumulatorFamily();
  return F;
}
