//===- spec/AbstractState.h - Abstract data structure states ----*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract states the paper's semantic reasoning happens over (Ch. 2.1,
/// Ch. 4): the set `contents` of a ListSet/HashSet, the key-value relation of
/// an AssociationList/HashTable, the integer-indexed sequence of an
/// ArrayList, and the counter of an Accumulator. Two executions commute
/// exactly when they agree on these states — not on the concrete linked
/// structures, which may differ (Fig. 4-1).
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SPEC_ABSTRACTSTATE_H
#define SEMCOMM_SPEC_ABSTRACTSTATE_H

#include "logic/StateView.h"
#include "logic/Value.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace semcomm {

/// Which abstract-state theory a family of data structures uses.
enum class StateKind : uint8_t { Counter, Set, Map, Seq };

/// A value of one of the four abstract-state theories. Equality is abstract
/// (semantic) equality, i.e. exactly the relation a(s1;2) = a(s2;1) of
/// Property 1.
class AbstractState : public StateView {
public:
  static AbstractState makeCounter(int64_t Initial = 0);
  static AbstractState makeSet();
  static AbstractState makeMap();
  static AbstractState makeSeq();

  StateKind kind() const { return Kind; }

  // --- StateView (read-only queries) --------------------------------------
  bool contains(const Value &V) const override;
  Value mapGet(const Value &K) const override;
  bool mapHasKey(const Value &K) const override;
  int64_t seqLen() const override;
  Value seqAt(int64_t I) const override;
  int64_t seqIndexOf(const Value &V) const override;
  int64_t seqLastIndexOf(const Value &V) const override;
  int64_t size() const override;
  int64_t counter() const override;

  // --- Mutators used by the executable operation specifications -----------

  /// Adds \p V to the set; returns true iff it was absent (the add() result).
  bool setInsert(const Value &V);
  /// Removes \p V; returns true iff it was present (the remove() result).
  bool setErase(const Value &V);

  /// Binds \p K to \p V; returns the previous binding or null (put()).
  Value mapPut(const Value &K, const Value &V);
  /// Unbinds \p K; returns the previous binding or null (remove()).
  Value mapErase(const Value &K);

  /// Inserts \p V at index \p I, shifting later elements up (add_at()).
  void seqInsert(int64_t I, const Value &V);
  /// Removes and returns the element at \p I, shifting down (remove_at()).
  Value seqRemove(int64_t I);
  /// Replaces the element at \p I; returns the replaced element (set()).
  Value seqSet(int64_t I, const Value &V);

  /// Adds \p Delta to the counter (increase()).
  void increase(int64_t Delta);

  /// Abstract-state equality.
  friend bool operator==(const AbstractState &A, const AbstractState &B);
  friend bool operator!=(const AbstractState &A, const AbstractState &B) {
    return !(A == B);
  }
  /// Total order so states can key ordered containers.
  friend bool operator<(const AbstractState &A, const AbstractState &B);

  /// Diagnostic rendering: {o1, o2}, {o1->o2}, [o1, o1, o3], ctr(7).
  std::string str() const;

private:
  explicit AbstractState(StateKind K) : Kind(K) {}

  StateKind Kind;
  int64_t CounterVal = 0;
  /// Set elements (kept sorted) or sequence elements (in order).
  std::vector<Value> Elems;
  /// Map entries, kept sorted by key.
  std::vector<std::pair<Value, Value>> Entries;
};

} // namespace semcomm

#endif // SEMCOMM_SPEC_ABSTRACTSTATE_H
