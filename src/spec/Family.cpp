//===- spec/Family.cpp - Data structure families and scopes ---------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "spec/Family.h"

#include "support/Unreachable.h"

#include <cassert>
#include <cstdio>

using namespace semcomm;

std::string Operation::renderCall(const std::string &StateName,
                                  int Position) const {
  std::string Call;
  if (RecordsReturn)
    Call += "r" + std::to_string(Position) + " = ";
  Call += StateName + "." + CallName + "(";
  for (size_t I = 0; I != ArgBaseNames.size(); ++I) {
    if (I)
      Call += ", ";
    Call += ArgBaseNames[I] + std::to_string(Position);
  }
  return Call + ")";
}

AbstractState Family::emptyState() const {
  switch (Kind) {
  case StateKind::Counter:
    return AbstractState::makeCounter(0);
  case StateKind::Set:
    return AbstractState::makeSet();
  case StateKind::Map:
    return AbstractState::makeMap();
  case StateKind::Seq:
    return AbstractState::makeSeq();
  }
  semcomm_unreachable("invalid state kind");
}

const Operation &Family::op(const std::string &OpName) const {
  for (const Operation &Op : Ops)
    if (Op.Name == OpName)
      return Op;
  std::fprintf(stderr, "family %s has no operation '%s'\n", Name.c_str(),
               OpName.c_str());
  std::abort();
}

unsigned Family::opIndex(const std::string &OpName) const {
  for (unsigned I = 0; I != Ops.size(); ++I)
    if (Ops[I].Name == OpName)
      return I;
  std::fprintf(stderr, "family %s has no operation '%s'\n", Name.c_str(),
               OpName.c_str());
  std::abort();
}

// --- State enumeration ------------------------------------------------------

static void enumerateSeqStates(int MaxLen, int NumVals,
                               std::vector<AbstractState> &Out) {
  // Breadth-first over lengths: all value strings of length 0..MaxLen.
  std::vector<std::vector<Value>> Current = {{}};
  for (int Len = 0; Len <= MaxLen; ++Len) {
    for (const auto &Prefix : Current) {
      AbstractState S = AbstractState::makeSeq();
      for (const Value &V : Prefix)
        S.seqInsert(S.seqLen(), V);
      Out.push_back(S);
    }
    if (Len == MaxLen)
      break;
    std::vector<std::vector<Value>> Next;
    for (const auto &Prefix : Current)
      for (int V = 1; V <= NumVals; ++V) {
        auto Extended = Prefix;
        Extended.push_back(Value::obj(V));
        Next.push_back(std::move(Extended));
      }
    Current = std::move(Next);
  }
}

std::vector<AbstractState> semcomm::enumerateStates(const Family &F,
                                                    const Scope &S) {
  std::vector<AbstractState> Out;
  switch (F.Kind) {
  case StateKind::Counter:
    for (int C = -S.CounterRange; C <= S.CounterRange; ++C)
      Out.push_back(AbstractState::makeCounter(C));
    return Out;

  case StateKind::Set: {
    int N = S.SetUniverse;
    for (unsigned Mask = 0; Mask < (1u << N); ++Mask) {
      AbstractState State = AbstractState::makeSet();
      for (int I = 0; I < N; ++I)
        if (Mask & (1u << I))
          State.setInsert(Value::obj(I + 1));
      Out.push_back(State);
    }
    return Out;
  }

  case StateKind::Map: {
    // Each key independently maps to one of MapVals values or is absent.
    int NumKeys = S.MapKeys, NumVals = S.MapVals;
    int64_t Total = 1;
    for (int I = 0; I < NumKeys; ++I)
      Total *= (NumVals + 1);
    for (int64_t Code = 0; Code < Total; ++Code) {
      AbstractState State = AbstractState::makeMap();
      int64_t Rest = Code;
      for (int K = 1; K <= NumKeys; ++K) {
        int Choice = static_cast<int>(Rest % (NumVals + 1));
        Rest /= (NumVals + 1);
        if (Choice != 0)
          State.mapPut(Value::obj(K), Value::obj(Choice));
      }
      Out.push_back(State);
    }
    return Out;
  }

  case StateKind::Seq:
    enumerateSeqStates(S.MaxSeqLen, S.SeqVals, Out);
    return Out;
  }
  semcomm_unreachable("invalid state kind");
}

// --- Argument enumeration ---------------------------------------------------

/// The candidate values for one formal parameter.
static std::vector<Value> argDomain(const Family &F, const std::string &Base,
                                    Sort ArgSort, const AbstractState &Initial,
                                    const Scope &S) {
  std::vector<Value> Domain;
  if (ArgSort == Sort::Int) {
    if (F.Kind == StateKind::Counter) {
      for (int V = -S.CounterRange; V <= S.CounterRange; ++V)
        Domain.push_back(Value::integer(V));
      return Domain;
    }
    // Sequence indices: cover one past an insertion-grown structure;
    // preconditions filter invalid scenarios.
    assert(F.Kind == StateKind::Seq && "int argument outside seq/counter");
    for (int64_t I = 0; I <= Initial.seqLen() + 1; ++I)
      Domain.push_back(Value::integer(I));
    return Domain;
  }

  assert(ArgSort == Sort::Obj && "unexpected argument sort");
  int Count = 0;
  switch (F.Kind) {
  case StateKind::Set:
    Count = S.SetUniverse;
    break;
  case StateKind::Map:
    Count = (Base == "k") ? S.MapKeys : S.MapVals;
    break;
  case StateKind::Seq:
    Count = S.SeqVals;
    break;
  case StateKind::Counter:
    semcomm_unreachable("object argument on an accumulator");
  }
  for (int I = 1; I <= Count; ++I)
    Domain.push_back(Value::obj(I));
  return Domain;
}

std::vector<ArgList> semcomm::enumerateArgs(const Family &F,
                                            const Operation &Op,
                                            const AbstractState &Initial,
                                            const Scope &S) {
  std::vector<ArgList> Tuples = {{}};
  for (size_t A = 0; A != Op.ArgSorts.size(); ++A) {
    std::vector<Value> Domain =
        argDomain(F, Op.ArgBaseNames[A], Op.ArgSorts[A], Initial, S);
    std::vector<ArgList> Next;
    Next.reserve(Tuples.size() * Domain.size());
    for (const ArgList &Tuple : Tuples)
      for (const Value &V : Domain) {
        ArgList Extended = Tuple;
        Extended.push_back(V);
        Next.push_back(std::move(Extended));
      }
    Tuples = std::move(Next);
  }
  return Tuples;
}

std::vector<const Family *> semcomm::allFamilies() {
  return {&accumulatorFamily(), &setFamily(), &mapFamily(),
          &arrayListFamily()};
}
