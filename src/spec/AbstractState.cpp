//===- spec/AbstractState.cpp - Abstract data structure states ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "spec/AbstractState.h"

#include "support/Unreachable.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

using namespace semcomm;

AbstractState AbstractState::makeCounter(int64_t Initial) {
  AbstractState S(StateKind::Counter);
  S.CounterVal = Initial;
  return S;
}

AbstractState AbstractState::makeSet() { return AbstractState(StateKind::Set); }

AbstractState AbstractState::makeMap() { return AbstractState(StateKind::Map); }

AbstractState AbstractState::makeSeq() { return AbstractState(StateKind::Seq); }

bool AbstractState::contains(const Value &V) const {
  assert(Kind == StateKind::Set && "contains() on a non-set state");
  return std::binary_search(Elems.begin(), Elems.end(), V);
}

Value AbstractState::mapGet(const Value &K) const {
  assert(Kind == StateKind::Map && "mapGet() on a non-map state");
  for (const auto &Entry : Entries)
    if (Entry.first == K)
      return Entry.second;
  return Value::null();
}

bool AbstractState::mapHasKey(const Value &K) const {
  assert(Kind == StateKind::Map && "mapHasKey() on a non-map state");
  for (const auto &Entry : Entries)
    if (Entry.first == K)
      return true;
  return false;
}

int64_t AbstractState::seqLen() const {
  assert(Kind == StateKind::Seq && "seqLen() on a non-sequence state");
  return static_cast<int64_t>(Elems.size());
}

Value AbstractState::seqAt(int64_t I) const {
  assert(Kind == StateKind::Seq && "seqAt() on a non-sequence state");
  if (I < 0 || I >= static_cast<int64_t>(Elems.size()))
    return Value::undef();
  return Elems[static_cast<size_t>(I)];
}

int64_t AbstractState::seqIndexOf(const Value &V) const {
  assert(Kind == StateKind::Seq && "seqIndexOf() on a non-sequence state");
  for (size_t I = 0; I != Elems.size(); ++I)
    if (Elems[I] == V)
      return static_cast<int64_t>(I);
  return -1;
}

int64_t AbstractState::seqLastIndexOf(const Value &V) const {
  assert(Kind == StateKind::Seq && "seqLastIndexOf() on a non-sequence state");
  for (size_t I = Elems.size(); I != 0; --I)
    if (Elems[I - 1] == V)
      return static_cast<int64_t>(I - 1);
  return -1;
}

int64_t AbstractState::size() const {
  switch (Kind) {
  case StateKind::Set:
  case StateKind::Seq:
    return static_cast<int64_t>(Elems.size());
  case StateKind::Map:
    return static_cast<int64_t>(Entries.size());
  case StateKind::Counter:
    semcomm_unreachable("size() on an accumulator state");
  }
  semcomm_unreachable("invalid state kind");
}

int64_t AbstractState::counter() const {
  assert(Kind == StateKind::Counter && "counter() on a non-counter state");
  return CounterVal;
}

bool AbstractState::setInsert(const Value &V) {
  assert(Kind == StateKind::Set && "setInsert() on a non-set state");
  auto It = std::lower_bound(Elems.begin(), Elems.end(), V);
  if (It != Elems.end() && *It == V)
    return false;
  Elems.insert(It, V);
  return true;
}

bool AbstractState::setErase(const Value &V) {
  assert(Kind == StateKind::Set && "setErase() on a non-set state");
  auto It = std::lower_bound(Elems.begin(), Elems.end(), V);
  if (It == Elems.end() || *It != V)
    return false;
  Elems.erase(It);
  return true;
}

Value AbstractState::mapPut(const Value &K, const Value &V) {
  assert(Kind == StateKind::Map && "mapPut() on a non-map state");
  for (auto &Entry : Entries)
    if (Entry.first == K) {
      Value Old = Entry.second;
      Entry.second = V;
      return Old;
    }
  Entries.emplace_back(K, V);
  std::sort(Entries.begin(), Entries.end());
  return Value::null();
}

Value AbstractState::mapErase(const Value &K) {
  assert(Kind == StateKind::Map && "mapErase() on a non-map state");
  for (auto It = Entries.begin(); It != Entries.end(); ++It)
    if (It->first == K) {
      Value Old = It->second;
      Entries.erase(It);
      return Old;
    }
  return Value::null();
}

void AbstractState::seqInsert(int64_t I, const Value &V) {
  assert(Kind == StateKind::Seq && "seqInsert() on a non-sequence state");
  assert(I >= 0 && I <= static_cast<int64_t>(Elems.size()) &&
         "seqInsert() index out of range");
  Elems.insert(Elems.begin() + static_cast<ptrdiff_t>(I), V);
}

Value AbstractState::seqRemove(int64_t I) {
  assert(Kind == StateKind::Seq && "seqRemove() on a non-sequence state");
  assert(I >= 0 && I < static_cast<int64_t>(Elems.size()) &&
         "seqRemove() index out of range");
  Value Old = Elems[static_cast<size_t>(I)];
  Elems.erase(Elems.begin() + static_cast<ptrdiff_t>(I));
  return Old;
}

Value AbstractState::seqSet(int64_t I, const Value &V) {
  assert(Kind == StateKind::Seq && "seqSet() on a non-sequence state");
  assert(I >= 0 && I < static_cast<int64_t>(Elems.size()) &&
         "seqSet() index out of range");
  Value Old = Elems[static_cast<size_t>(I)];
  Elems[static_cast<size_t>(I)] = V;
  return Old;
}

void AbstractState::increase(int64_t Delta) {
  assert(Kind == StateKind::Counter && "increase() on a non-counter state");
  CounterVal += Delta;
}

namespace semcomm {

bool operator==(const AbstractState &A, const AbstractState &B) {
  return A.Kind == B.Kind && A.CounterVal == B.CounterVal &&
         A.Elems == B.Elems && A.Entries == B.Entries;
}

bool operator<(const AbstractState &A, const AbstractState &B) {
  if (A.Kind != B.Kind)
    return static_cast<int>(A.Kind) < static_cast<int>(B.Kind);
  if (A.CounterVal != B.CounterVal)
    return A.CounterVal < B.CounterVal;
  if (A.Elems != B.Elems)
    return A.Elems < B.Elems;
  return A.Entries < B.Entries;
}

} // namespace semcomm

std::string AbstractState::str() const {
  std::string S;
  switch (Kind) {
  case StateKind::Counter:
    return "ctr(" + std::to_string(CounterVal) + ")";
  case StateKind::Set: {
    S = "{";
    for (size_t I = 0; I != Elems.size(); ++I)
      S += (I ? ", " : "") + Elems[I].str();
    return S + "}";
  }
  case StateKind::Map: {
    S = "{";
    for (size_t I = 0; I != Entries.size(); ++I)
      S += (I ? ", " : "") + Entries[I].first.str() + "->" +
           Entries[I].second.str();
    return S + "}";
  }
  case StateKind::Seq: {
    S = "[";
    for (size_t I = 0; I != Elems.size(); ++I)
      S += (I ? ", " : "") + Elems[I].str();
    return S + "]";
  }
  }
  semcomm_unreachable("invalid state kind");
}
