//===- spec/Operation.h - Executable operation specifications ---*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Operation is the executable form of a Jahob operation specification
/// (requires / modifies / ensures, Fig. 2-1): a precondition over the
/// abstract state and an abstract-state transformer returning the operation's
/// result. As in the paper (§5.1), every updating operation exists in two
/// variants — one whose client records the return value and one whose client
/// discards it — because the recorded variant observes more of the state and
/// therefore commutes less often.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SPEC_OPERATION_H
#define SEMCOMM_SPEC_OPERATION_H

#include "logic/Sort.h"
#include "spec/AbstractState.h"

#include <functional>
#include <string>
#include <vector>

namespace semcomm {

/// Actual arguments of one operation invocation.
using ArgList = std::vector<Value>;

/// One operation variant of a data structure family.
struct Operation {
  /// Identifier within the family; discarded-return variants carry a
  /// trailing underscore (e.g. "add" records, "add_" discards).
  std::string Name;

  /// The method name a client calls ("add", "remove_at", ...).
  std::string CallName;

  /// Sorts of the formal parameters.
  std::vector<Sort> ArgSorts;

  /// Base names of the formals; engines bind the actuals of operation N to
  /// <base>N in condition environments (e.g. put's {"k","v"} become k1, v1).
  std::vector<std::string> ArgBaseNames;

  /// Sort of the return value (meaningful only when HasReturn).
  Sort ReturnSort = Sort::Bool;

  /// Whether the method returns a value at all (add_at and increase do not).
  bool HasReturn = false;

  /// Whether this variant's client records the return value. Pure
  /// observers always record; discarded-return variants never do.
  bool RecordsReturn = false;

  /// Whether the operation may change the abstract state.
  bool Mutates = false;

  /// requires-clause over the abstract state (the paper's init / non-null
  /// conjuncts are implicit: engines never supply null arguments or
  /// uninitialized structures).
  std::function<bool(const AbstractState &, const ArgList &)> Pre;

  /// ensures-clause, as an executable transformer. Must only be applied in
  /// states satisfying Pre. Returns the operation result (Value::null() for
  /// void operations).
  std::function<Value(AbstractState &, const ArgList &)> Apply;

  /// Renders an invocation for the paper-style tables, e.g.
  /// "r2 = s2.contains(v2)" or "s1.add(v1)". \p Position is 1 or 2.
  std::string renderCall(const std::string &StateName, int Position) const;

  /// True for the pure observers (contains, get, size, indexOf, ...).
  bool isPure() const { return !Mutates; }
};

} // namespace semcomm

#endif // SEMCOMM_SPEC_OPERATION_H
