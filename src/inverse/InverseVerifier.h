//===- inverse/InverseVerifier.h - Inverse testing methods ------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inverse testing method of Fig. 3-2, checked exhaustively over a
/// Scope: from every abstract state satisfying the forward precondition,
/// execute the operation, check the inverse's precondition (Property 3
/// demands it holds), execute the inverse, and require the initial abstract
/// state back.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_INVERSE_INVERSEVERIFIER_H
#define SEMCOMM_INVERSE_INVERSEVERIFIER_H

#include "inverse/InverseSpec.h"

#include <cstdint>
#include <optional>
#include <string>

namespace semcomm {

/// Outcome of verifying one inverse testing method.
struct InverseVerifyResult {
  bool Verified = false;
  uint64_t ScenariosChecked = 0;
  std::string FailureNote; ///< Empty when verified.
};

/// Exhaustively verifies Property 3 for \p Spec within \p Bounds.
InverseVerifyResult verifyInverse(const InverseSpec &Spec,
                                  const Scope &Bounds = Scope());

} // namespace semcomm

#endif // SEMCOMM_INVERSE_INVERSEVERIFIER_H
