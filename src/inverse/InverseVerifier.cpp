//===- inverse/InverseVerifier.cpp - Inverse testing methods --------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "inverse/InverseVerifier.h"

using namespace semcomm;

InverseVerifyResult semcomm::verifyInverse(const InverseSpec &Spec,
                                           const Scope &Bounds) {
  const Family &Fam = *Spec.Fam;
  const Operation &Op = Fam.op(Spec.OpName);

  InverseVerifyResult Result;
  Result.Verified = true;

  for (const AbstractState &Initial : enumerateStates(Fam, Bounds)) {
    for (const ArgList &Args : enumerateArgs(Fam, Op, Initial, Bounds)) {
      if (!Op.Pre(Initial, Args))
        continue;
      ++Result.ScenariosChecked;

      AbstractState St = Initial;
      Value R = Op.Apply(St, Args);

      if (!Spec.Pre(St, Args, R)) {
        Result.Verified = false;
        Result.FailureNote = "inverse precondition fails after " +
                             Op.renderCall("s", 1) + " from " + Initial.str();
        return Result;
      }

      Spec.Apply(St, Args, R);
      if (!(St == Initial)) {
        Result.Verified = false;
        Result.FailureNote = "abstract state not restored: started at " +
                             Initial.str() + ", ended at " + St.str();
        return Result;
      }
    }
  }
  return Result;
}
