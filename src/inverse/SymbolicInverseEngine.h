//===- inverse/SymbolicInverseEngine.h - Symbolic inverse VCs ---*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic counterpart of inverse/InverseVerifier.h: where the
/// exhaustive path executes `op ; inverse` on every enumerated abstract
/// state (Fig. 3-2), this engine encodes `op ; inverse ≡ identity` as a
/// verification condition over an *uninterpreted* initial state and
/// discharges it through the same session machinery the commutativity
/// engine uses (commute/SessionPool.h):
///
///  * Accumulator: the restored counter is the literal term c0 + v - v;
///    the identity VC folds in the linear-atom canonicalizer.
///  * Set / Map: the inverse's branch on the recorded return value becomes
///    a boolean/object ITE over the update chain; identity is checked at
///    the touched element/key *and* at a fresh symbolic one, so the VC
///    exercises the congruence bridges (equal keys read equal values), not
///    just constant folding.
///  * ArrayList: lengths and indices are case-split up to a bound with the
///    elements kept symbolic (the commutativity engine's bounded mode);
///    the inverse's precondition (Property 3 obliges it to hold) is
///    checked per split.
///
/// The exhaustive and symbolic verdicts are cross-checked in tests and by
/// `semcommute-verify --engine both`.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_INVERSE_SYMBOLICINVERSEENGINE_H
#define SEMCOMM_INVERSE_SYMBOLICINVERSEENGINE_H

#include "commute/SessionPool.h"
#include "inverse/InverseSpec.h"

#include <cstdint>

namespace semcomm {

/// Symbolically verifies Property 3 for \p Spec: executing the operation
/// and then its inverse restores the initial abstract state. \p SeqLenBound
/// bounds the ArrayList case splits; statistics land in the returned
/// SymbolicResult exactly as for commutativity methods. \p Certify turns on
/// proof logging + independent checking (ProofQueries / ProofClauses /
/// ProofChecked in the result), so inverse verdicts carry certificates
/// like commutativity verdicts do.
SymbolicResult verifyInverseSymbolic(ExprFactory &F, const InverseSpec &Spec,
                                     int SeqLenBound = 3,
                                     int64_t ConflictBudget = 200000,
                                     SolveMode Mode = SolveMode::SharedPair,
                                     bool Certify = false);

} // namespace semcomm

#endif // SEMCOMM_INVERSE_SYMBOLICINVERSEENGINE_H
