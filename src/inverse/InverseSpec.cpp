//===- inverse/InverseSpec.cpp - Inverse operations (Table 5.10) ----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "inverse/InverseSpec.h"

using namespace semcomm;

std::vector<InverseSpec> semcomm::buildInverseSpecs() {
  std::vector<InverseSpec> Specs;

  // Accumulator: s1.increase(v)  ~>  s2.increase(-v).
  {
    InverseSpec S;
    S.Fam = &accumulatorFamily();
    S.OpName = "increase";
    S.ForwardText = "s1.increase(v)";
    S.InverseText = "s2.increase(-v)";
    S.UsesReturn = false;
    S.Pre = [](const AbstractState &, const ArgList &, const Value &) {
      return true;
    };
    S.Apply = [](AbstractState &St, const ArgList &Args, const Value &) {
      St.increase(-Args[0].asInt());
    };
    Specs.push_back(S);
  }

  // Set: r = s1.add(v)  ~>  if r = true then s2.remove(v). The return value
  // distinguishes "v was new" (undo by removing) from "v was already
  // present" (the add was a no-op; so is the inverse) — Fig. 2-3.
  {
    InverseSpec S;
    S.Fam = &setFamily();
    S.OpName = "add";
    S.ForwardText = "r = s1.add(v)";
    S.InverseText = "if r = true then s2.remove(v)";
    S.UsesReturn = true;
    S.Pre = [](const AbstractState &, const ArgList &, const Value &) {
      return true;
    };
    S.Apply = [](AbstractState &St, const ArgList &Args, const Value &R) {
      if (R.asBool())
        St.setErase(Args[0]);
    };
    Specs.push_back(S);
  }

  // Set: r = s1.remove(v)  ~>  if r = true then s2.add(v).
  {
    InverseSpec S;
    S.Fam = &setFamily();
    S.OpName = "remove";
    S.ForwardText = "r = s1.remove(v)";
    S.InverseText = "if r = true then s2.add(v)";
    S.UsesReturn = true;
    S.Pre = [](const AbstractState &, const ArgList &, const Value &) {
      return true;
    };
    S.Apply = [](AbstractState &St, const ArgList &Args, const Value &R) {
      if (R.asBool())
        St.setInsert(Args[0]);
    };
    Specs.push_back(S);
  }

  // Map: r = s1.put(k, v)  ~>  if r ~= null then s2.put(k, r)
  //                            else s2.remove(k)            — Fig. 2-4.
  {
    InverseSpec S;
    S.Fam = &mapFamily();
    S.OpName = "put";
    S.ForwardText = "r = s1.put(k, v)";
    S.InverseText = "if r ~= null then s2.put(k, r) else s2.remove(k)";
    S.UsesReturn = true;
    S.Pre = [](const AbstractState &, const ArgList &, const Value &) {
      return true;
    };
    S.Apply = [](AbstractState &St, const ArgList &Args, const Value &R) {
      if (!R.isNull())
        St.mapPut(Args[0], R);
      else
        St.mapErase(Args[0]);
    };
    Specs.push_back(S);
  }

  // Map: r = s1.remove(k)  ~>  if r ~= null then s2.put(k, r).
  {
    InverseSpec S;
    S.Fam = &mapFamily();
    S.OpName = "remove";
    S.ForwardText = "r = s1.remove(k)";
    S.InverseText = "if r ~= null then s2.put(k, r)";
    S.UsesReturn = true;
    S.Pre = [](const AbstractState &, const ArgList &, const Value &) {
      return true;
    };
    S.Apply = [](AbstractState &St, const ArgList &Args, const Value &R) {
      if (!R.isNull())
        St.mapPut(Args[0], R);
    };
    Specs.push_back(S);
  }

  // ArrayList: s1.add_at(i, v)  ~>  s2.remove_at(i). Note the restored
  // abstract sequence is identical even though a concrete ArrayList's
  // spare capacity may differ.
  {
    InverseSpec S;
    S.Fam = &arrayListFamily();
    S.OpName = "add_at";
    S.ForwardText = "s1.add_at(i, v)";
    S.InverseText = "s2.remove_at(i)";
    S.UsesReturn = false;
    S.Pre = [](const AbstractState &St, const ArgList &Args, const Value &) {
      int64_t I = Args[0].asInt();
      return I >= 0 && I < St.seqLen();
    };
    S.Apply = [](AbstractState &St, const ArgList &Args, const Value &) {
      St.seqRemove(Args[0].asInt());
    };
    Specs.push_back(S);
  }

  // ArrayList: r = s1.remove_at(i)  ~>  s2.add_at(i, r).
  {
    InverseSpec S;
    S.Fam = &arrayListFamily();
    S.OpName = "remove_at";
    S.ForwardText = "r = s1.remove_at(i)";
    S.InverseText = "s2.add_at(i, r)";
    S.UsesReturn = true;
    S.Pre = [](const AbstractState &St, const ArgList &Args, const Value &) {
      int64_t I = Args[0].asInt();
      return I >= 0 && I <= St.seqLen();
    };
    S.Apply = [](AbstractState &St, const ArgList &Args, const Value &R) {
      St.seqInsert(Args[0].asInt(), R);
    };
    Specs.push_back(S);
  }

  // ArrayList: r = s1.set(i, v)  ~>  s2.set(i, r).
  {
    InverseSpec S;
    S.Fam = &arrayListFamily();
    S.OpName = "set";
    S.ForwardText = "r = s1.set(i, v)";
    S.InverseText = "s2.set(i, r)";
    S.UsesReturn = true;
    S.Pre = [](const AbstractState &St, const ArgList &Args, const Value &) {
      int64_t I = Args[0].asInt();
      return I >= 0 && I < St.seqLen();
    };
    S.Apply = [](AbstractState &St, const ArgList &Args, const Value &R) {
      St.seqSet(Args[0].asInt(), R);
    };
    Specs.push_back(S);
  }

  return Specs;
}
