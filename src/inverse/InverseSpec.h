//===- inverse/InverseSpec.h - Inverse operations (Table 5.10) --*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inverse operations (§1.3, §4.2, Table 5.10): for every operation that
/// changes the abstract state, a program that — given the operation's
/// arguments and recorded return value — restores the *abstract* state
/// (Property 3; the concrete state may legitimately differ). Speculative
/// systems execute these to roll back mis-speculated operations, which is
/// typically far cheaper than snapshotting (see bench/perf_inverse_vs_
/// snapshot).
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_INVERSE_INVERSESPEC_H
#define SEMCOMM_INVERSE_INVERSESPEC_H

#include "spec/Family.h"

#include <functional>
#include <string>
#include <vector>

namespace semcomm {

/// One row of Table 5.10: an updating operation together with the program
/// that undoes it.
struct InverseSpec {
  const Family *Fam = nullptr;
  /// Name of the forward operation (the recorded variant, since most
  /// inverses consume the recorded return value).
  std::string OpName;
  /// Rendering of the forward call, e.g. "r = s1.put(k, v)".
  std::string ForwardText;
  /// Rendering of the inverse program, e.g.
  /// "if r ~= null then s2.put(k, r) else s2.remove(k)".
  std::string InverseText;
  /// Whether the inverse consumes the forward return value (a system
  /// applying it must therefore store that value, §5.3).
  bool UsesReturn = false;

  /// Precondition of the inverse in the post-operation state; Property 3
  /// obliges it to hold whenever the forward precondition held.
  std::function<bool(const AbstractState &, const ArgList &, const Value &R)>
      Pre;

  /// Executes the inverse on the state the forward operation produced.
  std::function<void(AbstractState &, const ArgList &, const Value &R)> Apply;
};

/// The eight inverse specifications of Table 5.10, in table order.
std::vector<InverseSpec> buildInverseSpecs();

} // namespace semcomm

#endif // SEMCOMM_INVERSE_INVERSESPEC_H
