//===- inverse/SymbolicInverseEngine.cpp - Symbolic inverse VCs -------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "inverse/SymbolicInverseEngine.h"

#include "support/Unreachable.h"

#include <string>
#include <vector>

using namespace semcomm;

namespace {

/// Accumulator: s1.increase(v) ; s2.increase(-v). The restored counter is
/// the term c0 + v + (-v); its identity VC folds in the canonicalizer.
MethodPlan counterInversePlan(ExprFactory &F) {
  ExprRef C0 = F.var("c0", Sort::Int);
  ExprRef V = F.var("v", Sort::Int);
  ExprRef Final = F.add(F.add(C0, V), F.neg(V));

  MethodPlan P;
  P.Name = "inverse_Accumulator_increase";
  VcSplit S;
  S.Assumed.push_back({F.lnot(F.eq(Final, C0)), "not-identity"});
  P.Splits.push_back(std::move(S));
  return P;
}

/// Set add/remove: the inverse branches on the recorded return value r, so
/// the restored membership of an element x is an ITE on r over the update
/// chains. Identity is checked at the touched element v and at a fresh
/// symbolic element w (the case split on w = v exercises the membership
/// congruence bridges).
MethodPlan setInversePlan(ExprFactory &F, const InverseSpec &Spec) {
  ExprRef S0 = F.var("S0", Sort::State);
  ExprRef V = F.var("v", Sort::Obj);
  ExprRef W = F.var("w", Sort::Obj);

  auto Mem0 = [&](ExprRef X) { return F.setContains(S0, X); };
  bool IsAdd = Spec.OpName == "add";
  // r: "the forward operation changed the state".
  ExprRef R = IsAdd ? F.lnot(Mem0(V)) : Mem0(V);

  auto Final = [&](ExprRef X) -> ExprRef {
    if (IsAdd) {
      // add(v) then (if r then remove(v)).
      ExprRef AfterAdd = F.disj({F.eq(X, V), Mem0(X)});
      return F.ite(R, F.conj({F.ne(X, V), AfterAdd}), AfterAdd);
    }
    // remove(v) then (if r then add(v)).
    ExprRef AfterRem = F.conj({F.ne(X, V), Mem0(X)});
    return F.ite(R, F.disj({F.eq(X, V), AfterRem}), AfterRem);
  };

  MethodPlan P;
  P.Name = "inverse_Set_" + Spec.OpName;
  P.Common = {F.ne(V, F.nullConst()), F.ne(W, F.nullConst())};
  for (auto [X, Tag] : {std::pair<ExprRef, const char *>{V, "v"},
                        std::pair<ExprRef, const char *>{W, "w"}}) {
    VcSplit S;
    S.Assumed.push_back({F.lnot(F.iff(Final(X), Mem0(X))),
                         std::string("not-identity@") + Tag});
    P.Splits.push_back(std::move(S));
  }
  return P;
}

/// Map put/remove: the recorded return is the previous binding
/// r = get(M0, k); the inverse branches on r ~= null. The restored lookup
/// at a key x is a nested object ITE that the session's eqObj lowering
/// unfolds; identity is checked at the touched key k and a fresh key k2
/// (exercising the lookup congruence bridges).
MethodPlan mapInversePlan(ExprFactory &F, const InverseSpec &Spec) {
  ExprRef M0 = F.var("M0", Sort::State);
  ExprRef K = F.var("k", Sort::Obj);
  ExprRef K2 = F.var("k2", Sort::Obj);
  ExprRef Null = F.nullConst();

  auto Get0 = [&](ExprRef X) { return F.mapGet(M0, X); };
  ExprRef R = Get0(K);
  ExprRef Cond = F.ne(R, Null); // "the key was bound before".
  bool IsPut = Spec.OpName == "put";

  auto Final = [&](ExprRef X) -> ExprRef {
    if (IsPut) {
      ExprRef V = F.var("v", Sort::Obj);
      // put(k, v) then (if r ~= null then put(k, r) else remove(k)).
      ExprRef AfterPut = F.ite(F.eq(X, K), V, Get0(X));
      ExprRef PutBack = F.ite(F.eq(X, K), R, AfterPut);
      ExprRef Removed = F.ite(F.eq(X, K), Null, AfterPut);
      return F.ite(Cond, PutBack, Removed);
    }
    // remove(k) then (if r ~= null then put(k, r)).
    ExprRef AfterRem = F.ite(F.eq(X, K), Null, Get0(X));
    ExprRef PutBack = F.ite(F.eq(X, K), R, AfterRem);
    return F.ite(Cond, PutBack, AfterRem);
  };

  MethodPlan P;
  P.Name = "inverse_Map_" + Spec.OpName;
  P.Common = {F.ne(K, Null), F.ne(K2, Null)};
  if (IsPut)
    P.Common.push_back(F.ne(F.var("v", Sort::Obj), Null));
  for (auto [X, Tag] : {std::pair<ExprRef, const char *>{K, "k"},
                        std::pair<ExprRef, const char *>{K2, "k2"}}) {
    VcSplit S;
    S.Assumed.push_back({F.lnot(F.eq(Final(X), Get0(X))),
                         std::string("not-identity@") + Tag});
    P.Splits.push_back(std::move(S));
  }
  return P;
}

/// ArrayList add_at/remove_at/set: lengths and indices are case-split up
/// to the bound with symbolic elements; the inverse must restore the exact
/// element-term vector, and its precondition must hold in the
/// post-operation state (Property 3), which is decidable per split.
MethodPlan seqInversePlan(ExprFactory &F, const InverseSpec &Spec,
                          int SeqLenBound) {
  MethodPlan P;
  P.Name = "inverse_ArrayList_" + Spec.OpName;

  ExprRef V = F.var("v", Sort::Obj);
  P.Common = {F.ne(V, F.nullConst())};
  for (int64_t I = 0; I < SeqLenBound; ++I)
    P.Common.push_back(
        F.ne(F.var("e" + std::to_string(I), Sort::Obj), F.nullConst()));

  for (int64_t N = 0; N <= SeqLenBound; ++N) {
    std::vector<ExprRef> Initial;
    for (int64_t I = 0; I < N; ++I)
      Initial.push_back(F.var("e" + std::to_string(I), Sort::Obj));

    // Valid forward index range per operation.
    int64_t IHi = Spec.OpName == "add_at" ? N : N - 1;
    for (int64_t I = 0; I <= IHi; ++I) {
      std::vector<ExprRef> S = Initial;
      bool InversePreOk = true;
      if (Spec.OpName == "add_at") {
        S.insert(S.begin() + static_cast<size_t>(I), V);
        // Inverse remove_at(i): needs 0 <= i < len.
        InversePreOk = I < static_cast<int64_t>(S.size());
        if (InversePreOk)
          S.erase(S.begin() + static_cast<size_t>(I));
      } else if (Spec.OpName == "remove_at") {
        ExprRef R = S[static_cast<size_t>(I)];
        S.erase(S.begin() + static_cast<size_t>(I));
        // Inverse add_at(i, r): needs 0 <= i <= len.
        InversePreOk = I <= static_cast<int64_t>(S.size());
        if (InversePreOk)
          S.insert(S.begin() + static_cast<size_t>(I), R);
      } else if (Spec.OpName == "set") {
        ExprRef R = S[static_cast<size_t>(I)];
        S[static_cast<size_t>(I)] = V;
        // Inverse set(i, r): needs 0 <= i < len.
        InversePreOk = I < static_cast<int64_t>(S.size());
        if (InversePreOk)
          S[static_cast<size_t>(I)] = R;
      } else {
        semcomm_unreachable("unknown ArrayList inverse operation");
      }

      VcSplit Split;
      Split.Label = "n=" + std::to_string(N) + " i=" + std::to_string(I);
      if (!InversePreOk || S.size() != Initial.size()) {
        // Property 3 violated structurally: emit an unconditionally
        // satisfiable VC so the method reports the failing split.
        Split.Assumed.push_back({F.trueExpr(), "inverse-pre-violated"});
      } else {
        std::vector<ExprRef> Eqs;
        for (size_t PIdx = 0; PIdx != S.size(); ++PIdx)
          Eqs.push_back(F.eq(S[PIdx], Initial[PIdx]));
        Split.Assumed.push_back({F.lnot(F.conj(std::move(Eqs))),
                                 "not-identity"});
      }
      P.Splits.push_back(std::move(Split));
    }
  }
  return P;
}

} // namespace

SymbolicResult semcomm::verifyInverseSymbolic(ExprFactory &F,
                                              const InverseSpec &Spec,
                                              int SeqLenBound,
                                              int64_t ConflictBudget,
                                              SolveMode Mode, bool Certify) {
  MethodPlan Plan;
  switch (Spec.Fam->Kind) {
  case StateKind::Counter:
    Plan = counterInversePlan(F);
    break;
  case StateKind::Set:
    Plan = setInversePlan(F, Spec);
    break;
  case StateKind::Map:
    Plan = mapInversePlan(F, Spec);
    break;
  case StateKind::Seq:
    Plan = seqInversePlan(F, Spec, SeqLenBound);
    break;
  }

  SharedSession Sess(F, ConflictBudget, Mode);
  if (Certify)
    Sess.enableCertification();
  SymbolicResult R;
  R.Verified = Sess.discharge(Plan, R);
  if (Certify) {
    const proof::CertifySummary &S = Sess.finishCertification();
    R.ProofClauses = S.PeakClauses;
    R.ProofChecked = S.Error.empty() && S.allPassed(R.ProofQueryTags);
  }
  return R;
}
