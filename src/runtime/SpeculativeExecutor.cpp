//===- runtime/SpeculativeExecutor.cpp - Parallel speculative txns --------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "runtime/SpeculativeExecutor.h"

#include "support/ThreadPool.h"
#include "support/Unreachable.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace semcomm;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t splitmix64(uint64_t &X) {
  uint64_t Z = (X += 0x9E3779B97F4A7C15ull);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

/// Precondition shape of one operation, precomputed so the per-step check
/// is a comparison against the live shard's StateView instead of an O(n)
/// abstraction() materialization. Only the ArrayList index preconditions
/// depend on the state (java.util.List bounds); everything else is total.
enum class PreKind : uint8_t {
  Total,
  IndexWithinLen, ///< 0 <= i < seqLen (get / set / remove_at).
  IndexAtMostLen, ///< 0 <= i <= seqLen (add_at).
};

std::vector<PreKind> buildPreKinds(const Family &Fam) {
  std::vector<PreKind> Kinds(Fam.Ops.size(), PreKind::Total);
  if (Fam.Name != "ArrayList")
    return Kinds;
  for (size_t I = 0; I != Fam.Ops.size(); ++I) {
    const std::string &Call = Fam.Ops[I].CallName;
    if (Call == "add_at")
      Kinds[I] = PreKind::IndexAtMostLen;
    else if (Call == "get" || Call == "set" || Call == "remove_at")
      Kinds[I] = PreKind::IndexWithinLen;
  }
  return Kinds;
}

bool preHolds(PreKind Kind, const StateView &Live, const ArgList &Args) {
  switch (Kind) {
  case PreKind::Total:
    return true;
  case PreKind::IndexWithinLen: {
    int64_t I = Args[0].asInt();
    return I >= 0 && I < Live.seqLen();
  }
  case PreKind::IndexAtMostLen: {
    int64_t I = Args[0].asInt();
    return I >= 0 && I <= Live.seqLen();
  }
  }
  semcomm_unreachable("covered switch");
}

/// Concretely executes the Table 5.10 inverse program of \p Spec on \p S.
/// Keyed by call name so recorded and discarded variants share one row:
/// the executor always logs the actual return value, which is exactly the
/// state an inverse needs (§5.3).
void applyInverseConcrete(ConcreteStructure &S, const Operation &Spec,
                          const ArgList &Args, const Value &Ret) {
  const std::string &Call = Spec.CallName;
  const std::string &FamName = S.family().Name;
  if (FamName == "Accumulator") {
    if (Call == "increase") {
      S.invoke("increase", {Value::integer(-Args[0].asInt())});
      return;
    }
  } else if (FamName == "Set") {
    if (Call == "add") {
      if (Ret.asBool())
        S.invoke("remove", {Args[0]});
      return;
    }
    if (Call == "remove") {
      if (Ret.asBool())
        S.invoke("add", {Args[0]});
      return;
    }
  } else if (FamName == "Map") {
    if (Call == "put") {
      if (!Ret.isNull())
        S.invoke("put", {Args[0], Ret});
      else
        S.invoke("remove", {Args[0]});
      return;
    }
    if (Call == "remove") {
      if (!Ret.isNull())
        S.invoke("put", {Args[0], Ret});
      return;
    }
  } else if (FamName == "ArrayList") {
    if (Call == "add_at") {
      S.invoke("remove_at", {Args[0]});
      return;
    }
    if (Call == "remove_at") {
      S.invoke("add_at", {Args[0], Ret});
      return;
    }
    if (Call == "set") {
      S.invoke("set", {Args[0], Ret});
      return;
    }
  }
  semcomm_unreachable("no concrete inverse for this operation");
}

} // namespace

/// One operation of a resolved transaction script (names resolved to
/// family operation indices once per run, off the hot path).
struct ResolvedOp {
  uint32_t Op = 0;
  uint32_t Shard = 0;
  ArgList Args;
};

/// One uncommitted operation in a shard's log.
struct ShardLogEntry {
  uint32_t Txn = 0;
  uint32_t Seq = 0; ///< Per-transaction sequence, to match undo entries.
  uint32_t Op = 0;
  ArgList Args;
  Value Ret;
  /// Precondition-failure placeholder: the operation was skipped, not
  /// executed. It pins the skip decision in the serial order — the
  /// gatekeeper treats it as commuting with nothing, so no operation
  /// admitted later can be serialized before it (a later add could
  /// otherwise make the skipped index valid under replaySerial).
  bool PreFailed = false;
};

struct SpeculativeExecutor::ShardState {
  explicit ShardState(std::unique_ptr<ConcreteStructure> S)
      : Instance(std::move(S)) {}
  std::mutex M;
  std::unique_ptr<ConcreteStructure> Instance;
  std::vector<ShardLogEntry> Log;
};

/// Sentinel transaction id ("none").
static constexpr uint32_t NoTxn = UINT32_MAX;

struct SpeculativeExecutor::TxnCtx {
  /// One executed operation in the transaction's private undo log.
  struct UndoEntry {
    uint32_t Shard = 0;
    uint32_t Seq = 0;
    uint32_t Op = 0;
    bool Mutates = false;
    ArgList Args;
    Value Ret;
  };

  uint32_t Id = 0; ///< Arrival index; doubles as the wound-wait age.
  std::vector<ResolvedOp> Script;
  size_t Pc = 0;
  uint32_t NextSeq = 0;
  unsigned Injected = 0;
  std::atomic<bool> Finished{false};
  /// Id of the older transaction that wounded this one (NoTxn = alive);
  /// honored at the next step boundary.
  std::atomic<uint32_t> DoomedBy{NoTxn};
  /// After a wound rollback: do not restart until this transaction has
  /// finished. Without the back-off the victim re-executes immediately,
  /// re-inserts the same conflicting entries, and gets wounded again — a
  /// ping-pong that can starve both sides for thousands of rounds.
  uint32_t WaitFor = NoTxn;
  std::vector<UndoEntry> Undo;
  std::vector<std::unique_ptr<ConcreteStructure>> Snapshots;
  std::vector<uint8_t> Touched;
};

struct SpeculativeExecutor::WorkerCtx {
  WorkerCtx(ExprFactory &F, const Catalog &C,
            std::shared_ptr<const index::CommutativityIndex> Idx)
      : Checker(F, C, std::move(Idx)) {}
  IndexedChecker Checker;
  ExecutorStats Stats;
};

SpeculativeExecutor::SpeculativeExecutor(ExprFactory &F, const Catalog &C,
                                         const StructureFactory &Factory,
                                         ExecutorConfig Cfg)
    : SpeculativeExecutor(F, C, Factory, Cfg,
                          std::make_shared<const index::CommutativityIndex>(
                              index::CommutativityIndex::compile(C))) {}

SpeculativeExecutor::SpeculativeExecutor(
    ExprFactory &F, const Catalog &C, const StructureFactory &Factory,
    ExecutorConfig Cfg, std::shared_ptr<const index::CommutativityIndex> Idx)
    : F(F), Cat(C), Factory(Factory), Cfg(Cfg), Idx(std::move(Idx)),
      Fam(*Factory.Fam), NumShards(this->Cfg.Shards == 0 ? 1 : this->Cfg.Shards),
      NumOps(Fam.Ops.size()) {
  for (PreKind K : buildPreKinds(Fam))
    PreKindTable.push_back(static_cast<uint8_t>(K));
  Shards.reserve(NumShards);
  for (size_t S = 0; S != NumShards; ++S)
    Shards.push_back(std::make_unique<ShardState>(Factory.Make()));

  unsigned NumWorkers = this->Cfg.Threads == 0 ? 1 : this->Cfg.Threads;
  Workers.reserve(NumWorkers);
  for (unsigned W = 0; W != NumWorkers; ++W)
    Workers.push_back(std::make_unique<WorkerCtx>(F, C, this->Idx));

  // Pre-resolve every ordered operation pair once: admission then inlines
  // to a constant-bitmap test (or one bytecode sweep) per logged entry.
  PairTable.reserve(NumOps * NumOps);
  for (size_t I = 0; I != NumOps; ++I)
    for (size_t J = 0; J != NumOps; ++J)
      PairTable.push_back(Workers.front()->Checker.resolve(
          Fam, Fam.Ops[I].Name, Fam.Ops[J].Name));

  Pool = std::make_unique<ThreadPool>(NumWorkers);
}

SpeculativeExecutor::~SpeculativeExecutor() = default;

const ConcreteStructure &SpeculativeExecutor::shard(unsigned S) const {
  assert(S < Shards.size() && "shard index out of range");
  return *Shards[S]->Instance;
}

SpeculativeExecutor::WorkerCtx &SpeculativeExecutor::acquireWorker() {
  std::lock_guard<std::mutex> L(FreeWorkersMutex);
  assert(!FreeWorkers.empty() && "more concurrent tasks than workers");
  WorkerCtx *W = FreeWorkers.back();
  FreeWorkers.pop_back();
  return *W;
}

void SpeculativeExecutor::releaseWorker(WorkerCtx &W) {
  std::lock_guard<std::mutex> L(FreeWorkersMutex);
  FreeWorkers.push_back(&W);
}

bool SpeculativeExecutor::attemptBudgetExhausted() {
  if (StepAttempts.fetch_add(1, std::memory_order_relaxed) <
      MaxStepAttempts)
    return false;
  Bailed.store(true, std::memory_order_relaxed);
  return true;
}

SpeculativeExecutor::StepOutcome
SpeculativeExecutor::step(TxnCtx &T, WorkerCtx &W) {
  if (T.Finished.load(std::memory_order_relaxed))
    return StepOutcome::Finished;
  if (T.DoomedBy.load(std::memory_order_relaxed) != NoTxn) {
    rollback(T, W, /*FromWound=*/true);
    return StepOutcome::SelfAborted;
  }
  if (T.WaitFor != NoTxn) {
    if (!Txns[T.WaitFor]->Finished.load(std::memory_order_acquire)) {
      ++W.Stats.WaitRounds;
      return StepOutcome::Waited;
    }
    T.WaitFor = NoTxn;
  }
  if (T.Pc >= T.Script.size()) {
    commitTxn(T, W);
    return StepOutcome::Finished;
  }

  const ResolvedOp &Op = T.Script[T.Pc];
  const Operation &Spec = Fam.Ops[Op.Op];
  ShardState &S = *Shards[Op.Shard];

  std::unique_lock<std::mutex> L(S.M);
  // Time only scans that see a non-empty log: an empty-log admission is
  // not a gatekeeper query, and folding it in would dilute ns/query.
  bool TimeThisScan = Cfg.TimeGatekeeper && !S.Log.empty();
  Clock::time_point GkStart;
  if (TimeThisScan)
    GkStart = Clock::now();
  auto RecordGkTime = [&] {
    if (TimeThisScan)
      W.Stats.GatekeeperNanos += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               GkStart)
              .count());
  };

  // Striped gatekeeper: the operation must commute with every uncommitted
  // operation of every other transaction logged in this shard. Conflicts
  // resolve wound-wait: if we are older, doom the younger owner and wait
  // for its effects to clear; if younger, wait for the older to finish
  // (we roll back only when wounded ourselves, which keeps the oldest
  // live transaction always able to make progress — no deadlock, no
  // abort livelock).
  for (const ShardLogEntry &E : S.Log) {
    if (E.Txn == T.Id)
      continue;
    ++W.Stats.GatekeeperChecks;
    // The snapshot baseline additionally requires writer exclusivity: a
    // whole-shard restore cannot coexist with interleaved writers.
    bool WriterClash = Cfg.Policy == RollbackPolicy::Snapshot &&
                       Spec.Mutates && Fam.Ops[E.Op].Mutates;
    bool Commutes = false;
    if (!E.PreFailed && !WriterClash && Cfg.UseCommutativity) {
      if (Cfg.CheckerPath == IndexedChecker::Path::Indexed)
        Commutes =
            W.Checker.mayCommuteFast(PairTable[E.Op * NumOps + Op.Op],
                                     *S.Instance, E.Args, E.Ret, Op.Args);
      else
        Commutes = W.Checker.mayCommute(*S.Instance, Fam.Ops[E.Op].Name,
                                        E.Args, E.Ret, Spec.Name, Op.Args);
    }
    if (Commutes) {
      ++W.Stats.GatekeeperPasses;
      continue;
    }
    uint32_t Owner = E.Txn;
    RecordGkTime();
    if (T.Id < Owner)
      Txns[Owner]->DoomedBy.store(T.Id, std::memory_order_relaxed);
    L.unlock();
    ++W.Stats.WaitRounds;
    return StepOutcome::Waited;
  }
  RecordGkTime();

  // Defensive precondition check against the live shard (the workload
  // generators produce total operations; ArrayList index bounds are the
  // exception).
  if (!preHolds(static_cast<PreKind>(PreKindTable[Op.Op]), *S.Instance,
                Op.Args)) {
    // While other transactions hold uncommitted effects in this shard the
    // failure may be an artifact of state that later aborts, so the skip
    // decision is deferred: resolve it like a conflict (wound-wait) and
    // re-evaluate once the foreign effects have cleared.
    for (const ShardLogEntry &E : S.Log) {
      if (E.Txn == T.Id)
        continue;
      uint32_t Owner = E.Txn;
      if (T.Id < Owner)
        Txns[Owner]->DoomedBy.store(T.Id, std::memory_order_relaxed);
      L.unlock();
      ++W.Stats.WaitRounds;
      return StepOutcome::Waited;
    }
    // Only committed state plus our own effects are visible, so the skip
    // is exactly what replaySerial decides at this point in the commit
    // order — provided nothing admitted later serializes before it. The
    // placeholder entry (commutes with nothing) enforces that.
    S.Log.push_back({T.Id, T.NextSeq, Op.Op, Op.Args, Value(),
                     /*PreFailed=*/true});
    L.unlock();
    T.Undo.push_back(
        {Op.Shard, T.NextSeq, Op.Op, /*Mutates=*/false, Op.Args, Value()});
    T.Touched[Op.Shard] = 1;
    ++T.NextSeq;
    ++T.Pc;
    ++W.Stats.PreSkips;
    return StepOutcome::PreSkipped;
  }

  if (Cfg.Policy == RollbackPolicy::Snapshot && Spec.Mutates &&
      !T.Snapshots[Op.Shard]) {
    T.Snapshots[Op.Shard] = S.Instance->clone();
    ++W.Stats.SnapshotsTaken;
  }

  Value Ret = S.Instance->invoke(Spec.CallName, Op.Args);
  S.Log.push_back({T.Id, T.NextSeq, Op.Op, Op.Args, Ret});
  L.unlock();

  T.Undo.push_back({Op.Shard, T.NextSeq, Op.Op, Spec.Mutates, Op.Args, Ret});
  T.Touched[Op.Shard] = 1;
  ++T.NextSeq;
  ++T.Pc;
  ++W.Stats.OpsExecuted;

  // Forced-abort injection: deterministic rollback storms for the
  // inverse-vs-snapshot equivalence tests and the bench's abort grid.
  if (Cfg.AbortEvery != 0 && T.Injected < Cfg.MaxInjectedAbortsPerTxn) {
    uint64_t N = Admissions.fetch_add(1, std::memory_order_relaxed) + 1;
    if (N % Cfg.AbortEvery == 0) {
      ++T.Injected;
      rollback(T, W, /*FromWound=*/false);
      return StepOutcome::SelfAborted;
    }
  }
  return StepOutcome::Executed;
}

void SpeculativeExecutor::rollback(TxnCtx &T, WorkerCtx &W, bool FromWound) {
  uint32_t Doomer = T.DoomedBy.exchange(NoTxn, std::memory_order_relaxed);
  if (FromWound && Doomer != NoTxn && Doomer != T.Id)
    T.WaitFor = Doomer; // Back off until the wounder is done.
  bool HadWork = !T.Undo.empty();

  if (Cfg.Policy == RollbackPolicy::Inverses) {
    // Undo this transaction's effects in reverse order (§1.3); other
    // transactions' effects stay in place — the inverses restore the
    // *abstract* state contribution of this transaction only, which is
    // exactly why they compose where snapshots cannot.
    for (auto It = T.Undo.rbegin(); It != T.Undo.rend(); ++It) {
      ShardState &S = *Shards[It->Shard];
      std::lock_guard<std::mutex> L(S.M);
      if (It->Mutates) {
        applyInverseConcrete(*S.Instance, Fam.Ops[It->Op], It->Args,
                             It->Ret);
        ++W.Stats.OpsUndone;
      }
      for (size_t I = 0; I != S.Log.size(); ++I) {
        if (S.Log[I].Txn == T.Id && S.Log[I].Seq == It->Seq) {
          S.Log[I] = std::move(S.Log.back());
          S.Log.pop_back();
          break;
        }
      }
    }
  } else {
    // Snapshot baseline: restore each shard this transaction wrote (sound
    // because admission enforced single-writer shards), then clear any
    // remaining read entries.
    for (size_t Sh = 0; Sh != NumShards; ++Sh) {
      if (!T.Touched[Sh])
        continue;
      ShardState &S = *Shards[Sh];
      std::lock_guard<std::mutex> L(S.M);
      if (T.Snapshots[Sh])
        S.Instance = std::move(T.Snapshots[Sh]);
      for (size_t I = S.Log.size(); I != 0; --I) {
        if (S.Log[I - 1].Txn == T.Id) {
          S.Log[I - 1] = std::move(S.Log.back());
          S.Log.pop_back();
        }
      }
    }
    for (const TxnCtx::UndoEntry &E : T.Undo)
      if (E.Mutates)
        ++W.Stats.OpsUndone;
  }

  T.Undo.clear();
  for (auto &Snap : T.Snapshots)
    Snap.reset();
  std::fill(T.Touched.begin(), T.Touched.end(), uint8_t(0));
  T.NextSeq = 0;
  T.Pc = 0;

  if (!HadWork)
    ++W.Stats.Stalls; // Wounded before executing anything: just delayed.
  else if (FromWound)
    ++W.Stats.Wounds;
  else
    ++W.Stats.InjectedAborts;
}

void SpeculativeExecutor::commitTxn(TxnCtx &T, WorkerCtx &W) {
  // Claim the commit sequence number BEFORE any shard log entry is
  // removed. A transaction whose operation conflicts with ours can only
  // be admitted once our entries are gone; it then depends on our
  // committed effects and must serialize after us. The shard mutex
  // release below / acquire on its side orders this fetch_add before the
  // dependent transaction's, so coherence on CommitSeq guarantees it a
  // later number. (Claiming the seq after clearing the logs opened a
  // window where the dependent could execute, finish, and grab a smaller
  // seq — commitOrder() then was not an equivalent serial order.)
  uint32_t Seq = CommitSeq.fetch_add(1, std::memory_order_relaxed);
  CommitOrderVec[Seq] = T.Id;
  for (size_t Sh = 0; Sh != NumShards; ++Sh) {
    if (!T.Touched[Sh])
      continue;
    ShardState &S = *Shards[Sh];
    std::lock_guard<std::mutex> L(S.M);
    for (size_t I = S.Log.size(); I != 0; --I) {
      if (S.Log[I - 1].Txn == T.Id) {
        S.Log[I - 1] = std::move(S.Log.back());
        S.Log.pop_back();
      }
    }
  }
  T.Undo.clear();
  for (auto &Snap : T.Snapshots)
    Snap.reset();
  ++W.Stats.Commits;
  // Release: transactions backed off on this one may now restart and must
  // see the log entries gone.
  T.Finished.store(true, std::memory_order_release);
}

void SpeculativeExecutor::parallelWorkerLoop() {
  // Run-queue scheduler: each worker pulls a runnable transaction, drives
  // it until it must wait or finishes, and rotates waiters to the back of
  // the queue. One long-lived task per worker — no per-step pool traffic —
  // so N workers really do drive N transactions concurrently. (The obvious
  // alternative, resubmitting a pool continuation per wait, serializes
  // under contention: the resubmitting worker steals its own continuation
  // back before any sleeping worker can wake.)
  WorkerCtx &W = acquireWorker();
  while (!Bailed.load(std::memory_order_relaxed) &&
         InFlight.load(std::memory_order_acquire) != 0) {
    uint32_t Ti = NoTxn;
    {
      std::lock_guard<std::mutex> L(ReadyMutex);
      if (!ReadyQueue.empty()) {
        Ti = ReadyQueue.front();
        ReadyQueue.pop_front();
      }
    }
    if (Ti == NoTxn) {
      // Every in-flight transaction is held by another worker right now.
      std::this_thread::yield();
      continue;
    }
    TxnCtx &T = *Txns[Ti];
    for (;;) {
      if (Bailed.load(std::memory_order_relaxed) ||
          attemptBudgetExhausted()) {
        releaseWorker(W);
        return;
      }
      StepOutcome O = step(T, W);
      if (O == StepOutcome::Finished) {
        // Bounded admission: this transaction's slot passes to the next
        // unstarted one. Starting everything upfront lets the in-flight
        // set — and with it every shard log and the conflict rate —
        // snowball.
        uint32_t Next = NextTxn.fetch_add(1, std::memory_order_relaxed);
        if (Next < Txns.size()) {
          std::lock_guard<std::mutex> L(ReadyMutex);
          ReadyQueue.push_back(Next);
        } else {
          InFlight.fetch_sub(1, std::memory_order_acq_rel);
        }
        break;
      }
      if (O == StepOutcome::Waited) {
        {
          std::lock_guard<std::mutex> L(ReadyMutex);
          ReadyQueue.push_back(Ti);
        }
        std::this_thread::yield();
        break;
      }
    }
  }
  releaseWorker(W);
}

void SpeculativeExecutor::runParallel() {
  // Default window: 2 in-flight transactions per worker — enough overlap
  // to keep every thread busy, bounded enough that shard logs stay short.
  size_t Window =
      Cfg.AdmitWindow != 0 ? Cfg.AdmitWindow : 2 * Workers.size();
  uint32_t Initial =
      static_cast<uint32_t>(std::min<size_t>(Window, Txns.size()));
  NextTxn.store(Initial, std::memory_order_relaxed);
  InFlight.store(Initial, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> L(ReadyMutex);
    ReadyQueue.clear();
    for (uint32_t Ti = 0; Ti != Initial; ++Ti)
      ReadyQueue.push_back(Ti);
  }
  for (size_t I = 0; I != Workers.size(); ++I)
    Pool->submit([this] { parallelWorkerLoop(); });
  Pool->wait();
}

void SpeculativeExecutor::runReplay() {
  // Seeded scheduler: every (draw, step) iteration runs under SchedMutex,
  // so the interleaving — and with it the final state, the commit order,
  // and every deterministic statistic — is a pure function of the seed
  // (and the admission window), whichever thread happens to execute each
  // iteration. With an explicit AdmitWindow the live set is a bounded
  // sliding window: admission order follows completion order, which is
  // itself seed-deterministic, so the invariance holds windowed too. This
  // makes Replay the mode of choice for measuring gatekeeper cost under
  // a *controlled* log density — the interleaving is forced by the
  // scheduler, not left to however many cores the host happens to have.
  size_t Window = Cfg.AdmitWindow != 0 ? Cfg.AdmitWindow : Txns.size();
  uint32_t Initial =
      static_cast<uint32_t>(std::min<size_t>(Window, Txns.size()));
  NextTxn.store(Initial, std::memory_order_relaxed);
  LiveTxns.clear();
  for (uint32_t Ti = 0; Ti != Initial; ++Ti)
    LiveTxns.push_back(Ti);
  unsigned NumTasks = Cfg.Threads == 0 ? 1 : Cfg.Threads;
  for (unsigned I = 0; I != NumTasks; ++I) {
    Pool->submit([this] {
      WorkerCtx &W = acquireWorker();
      for (;;) {
        std::lock_guard<std::mutex> L(SchedMutex);
        if (LiveTxns.empty() || Bailed.load(std::memory_order_relaxed) ||
            attemptBudgetExhausted())
          break;
        size_t K = splitmix64(RngState) % LiveTxns.size();
        TxnCtx &T = *Txns[LiveTxns[K]];
        if (step(T, W) == StepOutcome::Finished) {
          uint32_t Next = NextTxn.fetch_add(1, std::memory_order_relaxed);
          if (Next < Txns.size()) {
            LiveTxns[K] = Next;
          } else {
            LiveTxns[K] = LiveTxns.back();
            LiveTxns.pop_back();
          }
        }
      }
      releaseWorker(W);
    });
  }
  Pool->wait();
}

ExecutorStats SpeculativeExecutor::run(const std::vector<Transaction> &Input) {
  Txns.clear();
  Txns.reserve(Input.size());
  uint64_t TotalOps = 0;
  for (size_t Ti = 0; Ti != Input.size(); ++Ti) {
    auto T = std::make_unique<TxnCtx>();
    T->Id = static_cast<uint32_t>(Ti);
    T->Script.reserve(Input[Ti].size());
    for (const TxOp &Op : Input[Ti]) {
      // Hard input validation, in release builds too: silently wrapping a
      // miswired shard id would route the operation to the wrong shard.
      if (Op.Shard >= NumShards) {
        std::fprintf(stderr,
                     "SpeculativeExecutor::run: operation '%s' of txn %zu "
                     "addresses shard %u but the executor has %zu\n",
                     Op.OpName.c_str(), Ti, Op.Shard, NumShards);
        std::abort();
      }
      T->Script.push_back({Fam.opIndex(Op.OpName), Op.Shard, Op.Args});
    }
    T->Snapshots.resize(NumShards);
    T->Touched.assign(NumShards, 0);
    TotalOps += Input[Ti].size();
    Txns.push_back(std::move(T));
  }

  CommitOrderVec.assign(Input.size(), 0);
  CommitSeq.store(0, std::memory_order_relaxed);
  Admissions.store(0, std::memory_order_relaxed);
  StepAttempts.store(0, std::memory_order_relaxed);
  Bailed.store(false, std::memory_order_relaxed);
  // Livelock failsafe, far above any storm a sound workload produces:
  // wound-wait guarantees the oldest live transaction always progresses.
  MaxStepAttempts = 1000000ull + 200ull * TotalOps + 1000ull * Input.size();

  for (auto &W : Workers) {
    W->Stats = ExecutorStats();
    W->Checker.resetQueryStats();
    W->Checker.setPath(Cfg.CheckerPath);
    W->Checker.setStatsSampling(Cfg.StatsSamplePeriod);
  }
  {
    std::lock_guard<std::mutex> L(FreeWorkersMutex);
    FreeWorkers.clear();
    for (auto &W : Workers)
      FreeWorkers.push_back(W.get());
  }
  RngState = Cfg.ReplaySeed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull;

  if (!Input.empty()) {
    if (Cfg.Mode == SchedulerMode::Replay)
      runReplay();
    else
      runParallel();
  }

  // Failsafe cleanup: roll any unfinished transaction back so the shards
  // hold committed effects only.
  if (Bailed.load(std::memory_order_relaxed)) {
    for (auto &T : Txns) {
      if (T->Finished.load(std::memory_order_relaxed))
        continue;
      rollback(*T, *Workers.front(), /*FromWound=*/true);
      T->Finished.store(true, std::memory_order_relaxed);
    }
  }
  CommitOrderVec.resize(CommitSeq.load(std::memory_order_relaxed));

  ExecutorStats Agg;
  for (auto &W : Workers) {
    const ExecutorStats &S = W->Stats;
    Agg.OpsExecuted += S.OpsExecuted;
    Agg.GatekeeperChecks += S.GatekeeperChecks;
    Agg.GatekeeperPasses += S.GatekeeperPasses;
    Agg.GatekeeperNanos += S.GatekeeperNanos;
    Agg.Wounds += S.Wounds;
    Agg.InjectedAborts += S.InjectedAborts;
    Agg.Stalls += S.Stalls;
    Agg.WaitRounds += S.WaitRounds;
    Agg.OpsUndone += S.OpsUndone;
    Agg.PreSkips += S.PreSkips;
    Agg.SnapshotsTaken += S.SnapshotsTaken;
    Agg.Commits += S.Commits;
    const IndexedChecker::QueryStats &Q = W->Checker.queryStats();
    Agg.CheckerProgramRuns += Q.ProgramRuns;
    Agg.CheckerFallbacks += Q.InterpreterFallbacks;
    Agg.SampledGkQueries += Q.SampledQueries;
    Agg.SampledGkConstantHits += Q.SampledConstantHits;
  }
  Agg.Completed = !Bailed.load(std::memory_order_relaxed);
  return Agg;
}

std::vector<std::unique_ptr<ConcreteStructure>>
SpeculativeExecutor::replaySerial(const StructureFactory &Factory,
                                  unsigned Shards,
                                  const std::vector<Transaction> &Txns,
                                  const std::vector<uint32_t> &Order) {
  const Family &Fam = *Factory.Fam;
  std::vector<PreKind> Kinds = buildPreKinds(Fam);
  if (Shards == 0)
    Shards = 1;
  std::vector<std::unique_ptr<ConcreteStructure>> Out;
  Out.reserve(Shards);
  for (unsigned S = 0; S != Shards; ++S)
    Out.push_back(Factory.Make());
  for (uint32_t Ti : Order) {
    for (const TxOp &Op : Txns[Ti]) {
      unsigned OpIdx = Fam.opIndex(Op.OpName);
      ConcreteStructure &S = *Out[Op.Shard % Shards];
      if (!preHolds(Kinds[OpIdx], S, Op.Args))
        continue;
      S.invoke(Fam.Ops[OpIdx].CallName, Op.Args);
    }
  }
  return Out;
}
