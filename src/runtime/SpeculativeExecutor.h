//===- runtime/SpeculativeExecutor.h - Parallel speculative txns *- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating usage scenario (§1.2, §1.3, [29,30,31]) at
/// production shape: worker threads execute transactions speculatively over
/// a *sharded* set of structure instances, a *striped* gatekeeper — one
/// uncommitted-operation log per shard, admission through pre-resolved
/// IndexedChecker::PairHandles so the constant-bitmap fast path stays two
/// loads and a bit test — admits an operation only if it commutes with
/// every uncommitted operation of every other transaction in its shard,
/// and conflicts resolve by wound-wait: an older transaction wounds the
/// younger owner and waits for its effects to clear; a younger transaction
/// waits for the older to finish, rolling itself back only when wounded.
/// Aborted effects are undone with the verified Table 5.10 inverses (or,
/// as the baseline, by restoring a per-shard snapshot under single-writer
/// admission).
///
/// State-dependent preconditions (the ArrayList index bounds; every other
/// catalog operation is total) are never decided against speculative
/// foreign state: a precondition failure observed while other
/// transactions hold uncommitted effects in the shard is treated as a
/// conflict (wound-wait) and re-evaluated once those effects clear, and a
/// genuine skip leaves a conservative placeholder in the shard log —
/// commuting with nothing — so no operation admitted later can be
/// serialized before the skip decision. Skips therefore match what
/// replaySerial produces at the same point of the commit order.
///
/// Two scheduler modes:
///  * Parallel — real concurrency on a work-stealing pool; transactions
///    that must wait yield their worker by resubmitting a continuation.
///  * Replay — a seeded scheduler serializes every step under one mutex,
///    so the schedule (and therefore the final state, commit order, and
///    deterministic stats) is a pure function of the seed, invariant
///    across thread counts. This keeps verdict/state invariance testable
///    while the Parallel mode is measured.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_RUNTIME_SPECULATIVEEXECUTOR_H
#define SEMCOMM_RUNTIME_SPECULATIVEEXECUTOR_H

#include "runtime/IndexedChecker.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace semcomm {

class ThreadPool;

/// One scripted operation of a transaction, addressed to one shard.
struct TxOp {
  std::string OpName; ///< A recorded-variant operation of the family.
  ArgList Args;
  unsigned Shard = 0; ///< Which structure instance the operation targets.
};

/// A transaction: a straight-line script of operations.
using Transaction = std::vector<TxOp>;

/// How an aborted transaction's effects are undone.
enum class RollbackPolicy : uint8_t {
  Inverses, ///< Undo the log with the verified inverse operations (§1.3).
  Snapshot, ///< Restore per-shard copies taken at first write (baseline).
};

/// How steps are interleaved across transactions.
enum class SchedulerMode : uint8_t {
  Parallel, ///< Real worker threads; non-deterministic interleavings.
  Replay,   ///< Seeded serialized scheduler; thread-count invariant.
};

/// Executor configuration knobs.
struct ExecutorConfig {
  unsigned Threads = 1;
  unsigned Shards = 1;
  RollbackPolicy Policy = RollbackPolicy::Inverses;
  SchedulerMode Mode = SchedulerMode::Parallel;
  /// Seed of the Replay-mode scheduler (ignored in Parallel mode).
  uint64_t ReplaySeed = 1;
  /// Bounded admission: at most this many transactions in flight at once
  /// (0 = auto: 2 per worker in Parallel mode, everything at once in
  /// Replay mode). A fixed window keeps shard logs — and with them the
  /// gatekeeper load — at a controlled density, independent of thread
  /// count, so Replay-mode runs stay thread-count invariant.
  unsigned AdmitWindow = 0;
  /// When false every pair of concurrent same-shard operations conflicts
  /// (the no-commutativity baseline of bench/perf_speculation).
  bool UseCommutativity = true;
  /// Which machinery the gatekeeper queries (indexed fast path vs the
  /// tree-interpreter reference oracle).
  IndexedChecker::Path CheckerPath = IndexedChecker::Path::Indexed;
  /// Forced-abort injection: every Nth admitted operation dooms its own
  /// transaction (0 = off). Drives rollback storms deterministically.
  unsigned AbortEvery = 0;
  /// Injection cap per transaction, so storms always terminate.
  unsigned MaxInjectedAbortsPerTxn = 2;
  /// Opt-in sampled gatekeeper-checker stats (IndexedChecker
  /// setStatsSampling period; 0 = off).
  unsigned StatsSamplePeriod = 0;
  /// Time the admission loop (one steady_clock pair per attempted step),
  /// making gatekeeper ns/query reportable.
  bool TimeGatekeeper = false;
};

/// Execution statistics, aggregated over all workers. In Replay mode every
/// field except GatekeeperNanos and the Sampled* estimates is a pure
/// function of (workload, config, seed) — invariant across thread counts.
struct ExecutorStats {
  uint64_t OpsExecuted = 0;
  uint64_t GatekeeperChecks = 0;
  uint64_t GatekeeperPasses = 0;
  uint64_t GatekeeperNanos = 0; ///< Only when TimeGatekeeper.
  /// Rollbacks of executed work: self-aborts of wounded transactions.
  uint64_t Wounds = 0;
  /// Injected self-aborts (AbortEvery).
  uint64_t InjectedAborts = 0;
  /// Conflicts hit before the transaction had executed anything: it
  /// merely waits (degenerates to pessimistic serialization when the
  /// gatekeeper is off).
  uint64_t Stalls = 0;
  /// Admission retries spent waiting (for an older transaction to finish
  /// or a wounded younger one to clear its effects).
  uint64_t WaitRounds = 0;
  uint64_t OpsUndone = 0;
  uint64_t PreSkips = 0; ///< Ops skipped because the precondition failed.
  uint64_t SnapshotsTaken = 0;
  uint64_t Commits = 0;
  /// Aggregated per-worker checker counters (how admission queries
  /// resolved): bytecode program runs and interpreter fallbacks, plus the
  /// sampled fast-path classification when StatsSamplePeriod is set.
  uint64_t CheckerProgramRuns = 0;
  uint64_t CheckerFallbacks = 0;
  uint64_t SampledGkQueries = 0;
  uint64_t SampledGkConstantHits = 0;
  /// False only if the failsafe step bound was hit (a livelock guard;
  /// never expected on sound workloads).
  bool Completed = true;

  /// Total rollbacks of executed work.
  uint64_t aborts() const { return Wounds + InjectedAborts; }
};

/// Multi-threaded speculative executor over sharded structure instances.
class SpeculativeExecutor {
public:
  /// Compiles a private commutativity index from \p C.
  SpeculativeExecutor(ExprFactory &F, const Catalog &C,
                      const StructureFactory &Factory,
                      ExecutorConfig Cfg = ExecutorConfig());

  /// Shares \p Idx across executors (e.g. one compiled image serving a
  /// whole benchmark grid).
  SpeculativeExecutor(ExprFactory &F, const Catalog &C,
                      const StructureFactory &Factory, ExecutorConfig Cfg,
                      std::shared_ptr<const index::CommutativityIndex> Idx);

  ~SpeculativeExecutor();

  SpeculativeExecutor(const SpeculativeExecutor &) = delete;
  SpeculativeExecutor &operator=(const SpeculativeExecutor &) = delete;

  /// Runs \p Txns to completion and returns aggregated statistics. The
  /// shards retain the committed effects afterwards; commitOrder() names
  /// the equivalent serial order.
  ExecutorStats run(const std::vector<Transaction> &Txns);

  /// Shard count and per-shard structure access (for result inspection).
  unsigned numShards() const { return static_cast<unsigned>(NumShards); }
  const ConcreteStructure &shard(unsigned S) const;

  /// Key-hash shard routing used by workload builders: deterministic and
  /// stable across runs.
  static unsigned shardOf(const Value &Key, unsigned NumShards) {
    return NumShards < 2
               ? 0
               : static_cast<unsigned>(Key.hashCode() % NumShards);
  }

  /// Transaction indices in commit order of the last run().
  const std::vector<uint32_t> &commitOrder() const { return CommitOrderVec; }

  /// Executes \p Txns serially in \p Order on fresh instances from
  /// \p Factory (same shard routing and precondition-skip policy as the
  /// executor): the serializability reference for the last run's
  /// committed state.
  static std::vector<std::unique_ptr<ConcreteStructure>>
  replaySerial(const StructureFactory &Factory, unsigned Shards,
               const std::vector<Transaction> &Txns,
               const std::vector<uint32_t> &Order);

  const ExecutorConfig &config() const { return Cfg; }

  /// The compiled index the gatekeeper queries.
  const index::CommutativityIndex &index() const { return *Idx; }

private:
  struct ShardState;
  struct TxnCtx;
  struct WorkerCtx;
  enum class StepOutcome : uint8_t {
    Executed,
    PreSkipped,
    Waited,
    SelfAborted,
    Finished,
  };

  StepOutcome step(TxnCtx &T, WorkerCtx &W);
  void rollback(TxnCtx &T, WorkerCtx &W, bool FromWound);
  void commitTxn(TxnCtx &T, WorkerCtx &W);
  void runParallel();
  void runReplay();
  void parallelWorkerLoop();
  WorkerCtx &acquireWorker();
  void releaseWorker(WorkerCtx &W);
  bool attemptBudgetExhausted();

  ExprFactory &F;
  const Catalog &Cat;
  const StructureFactory &Factory;
  ExecutorConfig Cfg;
  std::shared_ptr<const index::CommutativityIndex> Idx;
  const Family &Fam;
  size_t NumShards;
  size_t NumOps;
  /// Precomputed precondition shape per operation index (a cpp-local
  /// PreKind enum, stored raw so the header stays implementation-free).
  std::vector<uint8_t> PreKindTable;

  std::vector<std::unique_ptr<ShardState>> Shards;
  /// Pre-resolved (op1, op2) handles, row-major over the family's
  /// operation indices; shared read-only by every worker's checker.
  std::vector<IndexedChecker::PairHandle> PairTable;
  std::vector<std::unique_ptr<WorkerCtx>> Workers;
  std::mutex FreeWorkersMutex;
  std::vector<WorkerCtx *> FreeWorkers;
  std::unique_ptr<ThreadPool> Pool;

  std::vector<std::unique_ptr<TxnCtx>> Txns;
  std::vector<uint32_t> CommitOrderVec;
  /// Next unstarted transaction (Parallel mode bounded admission).
  std::atomic<uint32_t> NextTxn{0};
  /// Admitted-but-unfinished count; Parallel workers exit when it drains.
  std::atomic<uint32_t> InFlight{0};
  /// Runnable transactions (Parallel mode): workers pull from the front
  /// and rotate waiters to the back.
  std::mutex ReadyMutex;
  std::deque<uint32_t> ReadyQueue;
  std::atomic<uint32_t> CommitSeq{0};
  std::atomic<uint64_t> Admissions{0};   ///< Injection counter.
  std::atomic<uint64_t> StepAttempts{0}; ///< Failsafe budget.
  uint64_t MaxStepAttempts = 0;
  std::atomic<bool> Bailed{false};

  // Replay-mode scheduler state (all accessed under SchedMutex).
  std::mutex SchedMutex;
  uint64_t RngState = 0;
  std::vector<uint32_t> LiveTxns;
};

} // namespace semcomm

#endif // SEMCOMM_RUNTIME_SPECULATIVEEXECUTOR_H
