//===- runtime/Lattice.h - The commutativity lattice ------------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.1 / Ch. 6 observe that the verified conditions are disjunctions of
/// clauses, and that dropping clauses yields sound but incomplete
/// conditions that are cheaper to evaluate but expose less concurrency —
/// a lattice ordered by disjunction (Kulkarni et al.'s commutativity
/// lattice). This module enumerates that lattice for a pair of operations,
/// machine-checking soundness/completeness of every point and measuring
/// the concurrency it exposes (the fraction of scenarios it accepts).
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_RUNTIME_LATTICE_H
#define SEMCOMM_RUNTIME_LATTICE_H

#include "commute/ExhaustiveEngine.h"

#include <string>
#include <vector>

namespace semcomm {

/// One point of the commutativity lattice of a pair of operations.
struct LatticePoint {
  ExprRef Condition = nullptr;
  unsigned NumClauses = 0;
  bool Sound = false;
  bool Complete = false;
  /// Fraction of (precondition-satisfying) scenarios the condition
  /// accepts: the concurrency this point exposes to a dynamic checker.
  double AcceptRate = 0.0;
};

/// Enumerates every clause subset of the between condition for
/// (\p Op1; \p Op2) of \p Fam, verifying and measuring each point.
std::vector<LatticePoint> buildLattice(ExprFactory &F, const Catalog &C,
                                       const ExhaustiveEngine &Engine,
                                       const Family &Fam,
                                       const std::string &Op1,
                                       const std::string &Op2);

/// The acceptance rate of \p Phi as a between condition of (\p Op1; \p Op2).
double acceptanceRate(const Family &Fam, const std::string &Op1,
                      const std::string &Op2, ExprRef Phi,
                      const Scope &Bounds = Scope());

} // namespace semcomm

#endif // SEMCOMM_RUNTIME_LATTICE_H
