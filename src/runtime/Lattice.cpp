//===- runtime/Lattice.cpp - The commutativity lattice ----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "runtime/Lattice.h"

#include "logic/Evaluator.h"
#include "logic/Simplifier.h"

using namespace semcomm;

double semcomm::acceptanceRate(const Family &Fam, const std::string &Op1Name,
                               const std::string &Op2Name, ExprRef Phi,
                               const Scope &Bounds) {
  const Operation &Op1 = Fam.op(Op1Name);
  const Operation &Op2 = Fam.op(Op2Name);
  uint64_t Total = 0, Accepted = 0;

  for (const AbstractState &Initial : enumerateStates(Fam, Bounds)) {
    for (const ArgList &A1 : enumerateArgs(Fam, Op1, Initial, Bounds)) {
      if (!Op1.Pre(Initial, A1))
        continue;
      for (const ArgList &A2 : enumerateArgs(Fam, Op2, Initial, Bounds)) {
        AbstractState Mid = Initial;
        Value R1 = Op1.Apply(Mid, A1);
        if (!Op2.Pre(Mid, A2))
          continue;
        AbstractState Fin = Mid;
        Value R2 = Op2.Apply(Fin, A2);

        Env E;
        for (size_t I = 0; I != A1.size(); ++I)
          E.bind(Op1.ArgBaseNames[I] + "1", A1[I]);
        for (size_t I = 0; I != A2.size(); ++I)
          E.bind(Op2.ArgBaseNames[I] + "2", A2[I]);
        if (Op1.RecordsReturn)
          E.bind("r1", R1);
        if (Op2.RecordsReturn)
          E.bind("r2", R2);
        E.bindState("s1", &Initial);
        E.bindState("s2", &Mid);
        E.bindState("s3", &Fin);

        ++Total;
        if (evaluateBool(Phi, E))
          ++Accepted;
      }
    }
  }
  return Total == 0 ? 0.0 : static_cast<double>(Accepted) / Total;
}

std::vector<LatticePoint>
semcomm::buildLattice(ExprFactory &F, const Catalog &C,
                      const ExhaustiveEngine &Engine, const Family &Fam,
                      const std::string &Op1, const std::string &Op2) {
  ExprRef Full = C.entry(Fam, Op1, Op2).Between;
  std::vector<ExprRef> Clauses = collectDisjuncts(Full);
  std::vector<LatticePoint> Points;

  for (unsigned Mask = 0; Mask < (1u << Clauses.size()); ++Mask) {
    std::vector<ExprRef> Kept;
    for (size_t I = 0; I != Clauses.size(); ++I)
      if (Mask & (1u << I))
        Kept.push_back(Clauses[I]);

    LatticePoint P;
    P.NumClauses = static_cast<unsigned>(Kept.size());
    P.Condition = F.disj(std::move(Kept));
    P.Sound = Engine
                  .verifyCondition(Fam, Op1, Op2, ConditionKind::Between,
                                   MethodRole::Soundness, P.Condition)
                  .Verified;
    P.Complete = Engine
                     .verifyCondition(Fam, Op1, Op2, ConditionKind::Between,
                                      MethodRole::Completeness, P.Condition)
                     .Verified;
    P.AcceptRate =
        acceptanceRate(Fam, Op1, Op2, P.Condition, Engine.scope());
    Points.push_back(P);
  }
  return Points;
}
