//===- runtime/DynamicChecker.cpp - Run-time condition checking ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "runtime/DynamicChecker.h"

#include "logic/Evaluator.h"
#include "logic/Simplifier.h"

using namespace semcomm;

const DynamicChecker::PairConditions &
DynamicChecker::pairConditions(const Family &Fam, const std::string &Op1,
                               const std::string &Op2) const {
  std::lock_guard<std::mutex> Lock(MemoMutex);
  auto Key = std::make_tuple(&Fam, Op1, Op2);
  auto It = Memo.find(Key);
  if (It != Memo.end())
    return It->second;
  PairConditions PC;
  PC.Between = Cat.entry(Fam, Op1, Op2).Between;
  PC.Conservative = dropS1Disjuncts(F, PC.Between);
  // std::map iterators are stable, so the returned reference outlives
  // later insertions.
  return Memo.emplace(std::move(Key), PC).first->second;
}

ExprRef DynamicChecker::betweenOf(const Family &Fam, const std::string &Op1,
                                  const std::string &Op2) const {
  return pairConditions(Fam, Op1, Op2).Between;
}

void DynamicChecker::bindArgs(Env &E, const Family &Fam,
                              const std::string &Op1, const ArgList &A1,
                              const Value &R1, const std::string &Op2,
                              const ArgList &A2) const {
  const Operation &O1 = Fam.op(Op1);
  const Operation &O2 = Fam.op(Op2);
  for (size_t I = 0; I != A1.size(); ++I)
    E.bind(O1.ArgBaseNames[I] + "1", A1[I]);
  for (size_t I = 0; I != A2.size(); ++I)
    E.bind(O2.ArgBaseNames[I] + "2", A2[I]);
  if (O1.RecordsReturn)
    E.bind("r1", R1);
}

bool DynamicChecker::commutesExact(const StateView &Before,
                                   const ConcreteStructure &Live,
                                   const std::string &Op1, const ArgList &A1,
                                   const Value &R1, const std::string &Op2,
                                   const ArgList &A2) const {
  const Family &Fam = Live.family();
  Env E;
  bindArgs(E, Fam, Op1, A1, R1, Op2, A2);
  E.bindState("s1", &Before);
  E.bindState("s2", &Live);
  return evaluateBool(betweenOf(Fam, Op1, Op2), E);
}

ExprRef DynamicChecker::conservativeBetween(const Family &Fam,
                                            const std::string &Op1,
                                            const std::string &Op2) const {
  return pairConditions(Fam, Op1, Op2).Conservative;
}

bool DynamicChecker::mayCommute(const ConcreteStructure &Live,
                                const std::string &Op1, const ArgList &A1,
                                const Value &R1, const std::string &Op2,
                                const ArgList &A2) const {
  const Family &Fam = Live.family();
  ExprRef Phi = conservativeBetween(Fam, Op1, Op2);
  if (Phi->isFalse())
    return false;
  Env E;
  bindArgs(E, Fam, Op1, A1, R1, Op2, A2);
  E.bindState("s2", &Live);
  return evaluateBool(Phi, E);
}
