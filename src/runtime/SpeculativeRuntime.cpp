//===- runtime/SpeculativeRuntime.cpp - Commutativity-based txns -----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "runtime/SpeculativeRuntime.h"

#include "support/Unreachable.h"

#include <cassert>

using namespace semcomm;

/// Concretely executes the Table 5.10 inverse program of \p OpName on \p S.
static void applyInverseConcrete(ConcreteStructure &S,
                                 const std::string &OpName,
                                 const ArgList &Args, const Value &Ret) {
  const std::string Key = S.family().Name + "." + OpName;
  if (Key == "Accumulator.increase") {
    S.invoke("increase", {Value::integer(-Args[0].asInt())});
    return;
  }
  if (Key == "Set.add") {
    if (Ret.asBool())
      S.invoke("remove", {Args[0]});
    return;
  }
  if (Key == "Set.remove") {
    if (Ret.asBool())
      S.invoke("add", {Args[0]});
    return;
  }
  if (Key == "Map.put") {
    if (!Ret.isNull())
      S.invoke("put", {Args[0], Ret});
    else
      S.invoke("remove", {Args[0]});
    return;
  }
  if (Key == "Map.remove") {
    if (!Ret.isNull())
      S.invoke("put", {Args[0], Ret});
    return;
  }
  if (Key == "ArrayList.add_at") {
    S.invoke("remove_at", {Args[0]});
    return;
  }
  if (Key == "ArrayList.remove_at") {
    S.invoke("add_at", {Args[0], Ret});
    return;
  }
  if (Key == "ArrayList.set") {
    S.invoke("set", {Args[0], Ret});
    return;
  }
  semcomm_unreachable("no concrete inverse for this operation");
}

SpeculativeRuntime::SpeculativeRuntime(ExprFactory &F, const Catalog &C,
                                       const StructureFactory &Factory,
                                       RollbackPolicy Policy)
    : F(F), Checker(F, C), Factory(Factory), Policy(Policy),
      Shared(Factory.Make()), Inverses(buildInverseSpecs()) {}

void SpeculativeRuntime::abortTxn(unsigned T, RuntimeStats &Stats) {
  TxState &St = States[T];
  if (St.Log.empty() && St.Pc == 0) {
    // Nothing executed yet: the conflict just delays the transaction.
    ++Stats.Stalls;
    return;
  }
  ++Stats.Aborts;

  if (Policy == RollbackPolicy::Inverses) {
    // Undo this transaction's effects in reverse order (§1.3); other
    // transactions' effects stay in place — the inverses restore the
    // *abstract* state contribution of this transaction only, which is
    // exactly why they compose where snapshots cannot.
    for (auto It = St.Log.rbegin(); It != St.Log.rend(); ++It) {
      if (!Shared->family().op(It->OpName).Mutates)
        continue;
      applyInverseConcrete(*Shared, It->OpName, It->Args, It->Ret);
      ++Stats.OpsUndone;
    }
    St.Log.clear();
    St.Pc = 0;
    return;
  }

  // Snapshot policy: restore the copy taken at this transaction's first
  // write. This is only sound because the policy enforces a single active
  // writer (see run()): a whole-structure restore would otherwise discard
  // other transactions' uncommitted work — the concurrency loss that makes
  // "pessimistically saving the data structure state" inferior to
  // inverses (§1.3).
  if (St.Snapshot)
    Shared = St.Snapshot->clone();
  Stats.OpsUndone += St.Log.size();
  St.Log.clear();
  St.Pc = 0;
  St.Snapshot.reset();
}

RuntimeStats SpeculativeRuntime::run(const std::vector<Transaction> &Txns) {
  RuntimeStats Stats;
  States.clear();
  States.resize(Txns.size());

  // Round-robin scheduler with a failsafe bound.
  uint64_t MaxSlots = 1000 * (1 + Txns.size()) * (1 + Txns.size());
  for (const Transaction &T : Txns)
    MaxSlots += 100 * T.size() * (1 + Txns.size());

  bool AllDone = false;
  for (uint64_t Slot = 0; !AllDone && Slot < MaxSlots; ++Slot) {
    AllDone = true;
    for (unsigned T = 0; T != Txns.size(); ++T) {
      TxState &St = States[T];
      if (St.Committed)
        continue;
      AllDone = false;
      if (St.Pc >= Txns[T].size()) {
        // Script finished: commit (atomically, in this simulation).
        St.Committed = true;
        St.Log.clear();
        St.Snapshot.reset();
        ++Stats.Commits;
        continue;
      }

      const TxOp &Op = Txns[T][St.Pc];
      const Operation &Spec = Shared->family().op(Op.OpName);

      // Gatekeeper: the operation must commute with every uncommitted
      // operation of every other transaction (wound-wait on conflict:
      // younger transactions are aborted in favour of older ones). The
      // snapshot policy additionally requires writer exclusivity, since a
      // whole-structure restore cannot coexist with interleaved writers.
      bool SelfAborted = false;
      const Family &Fam = Shared->family();
      for (unsigned U = 0; U != Txns.size() && !SelfAborted; ++U) {
        if (U == T || States[U].Committed)
          continue;
        for (const LogEntry &Entry : States[U].Log) {
          ++Stats.GatekeeperChecks;
          bool WriterClash = Policy == RollbackPolicy::Snapshot &&
                             Spec.Mutates &&
                             Fam.op(Entry.OpName).Mutates;
          bool Commutes =
              !WriterClash && UseCommutativity &&
              Checker.mayCommute(*Shared, Entry.OpName, Entry.Args,
                                 Entry.Ret, Op.OpName, Op.Args);
          if (Commutes) {
            ++Stats.GatekeeperPasses;
            continue;
          }
          if (U > T) {
            abortTxn(U, Stats);
            break; // U's log is gone; recheck the remaining transactions.
          }
          abortTxn(T, Stats);
          SelfAborted = true;
          break;
        }
      }
      if (SelfAborted)
        continue;

      // Skip operations whose precondition does not hold right now
      // (defensive; the workload generators produce total operations).
      AbstractState Abs = Shared->abstraction();
      if (!Spec.Pre(Abs, Op.Args)) {
        ++St.Pc;
        continue;
      }

      if (Policy == RollbackPolicy::Snapshot && Spec.Mutates &&
          !St.Snapshot) {
        St.Snapshot = Shared->clone();
        ++Stats.SnapshotsTaken;
      }

      Value Ret = Shared->invoke(Spec.CallName, Op.Args);
      St.Log.push_back({Op.OpName, Op.Args, Ret});
      ++St.Pc;
      ++Stats.OpsExecuted;
    }
  }
  return Stats;
}
