//===- runtime/DynamicChecker.h - Run-time condition checking ---*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's dynamic usage of the conditions (§1.2, §4.1): systems that
/// cannot statically resolve commutativity evaluate the *concrete dialect*
/// of a between condition just before executing the second operation. This
/// checker does exactly that against the live linked structure.
///
/// Between conditions may reference the initial state s1; at run time a
/// system must either have saved those values or drop the clauses that
/// need them, obtaining a sound but incomplete condition (§4.1.2 options
/// 1 and 2). Both policies are provided; the conservative policy is the
/// entry point of the commutativity lattice (Lattice.h).
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_RUNTIME_DYNAMICCHECKER_H
#define SEMCOMM_RUNTIME_DYNAMICCHECKER_H

#include "commute/Condition.h"
#include "impl/ConcreteStructure.h"
#include "logic/Evaluator.h"

#include <map>
#include <mutex>
#include <tuple>

namespace semcomm {

/// Evaluates between conditions against live structures.
class DynamicChecker {
public:
  DynamicChecker(ExprFactory &F, const Catalog &C) : F(F), Cat(C) {}

  /// Exact check: evaluates the between condition of (Op1; Op2) with s1
  /// bound to \p Before (a saved pre-state view) and s2 bound to \p Live.
  bool commutesExact(const StateView &Before, const ConcreteStructure &Live,
                     const std::string &Op1, const ArgList &A1,
                     const Value &R1, const std::string &Op2,
                     const ArgList &A2) const;

  /// Conservative check requiring no saved state: clauses referencing s1
  /// are dropped, leaving a sound, possibly incomplete condition evaluated
  /// against \p Live only. Returns false ("may conflict") when every
  /// clause needed s1.
  bool mayCommute(const ConcreteStructure &Live, const std::string &Op1,
                  const ArgList &A1, const Value &R1, const std::string &Op2,
                  const ArgList &A2) const;

  /// The conservative (s1-free) between condition used by mayCommute.
  ExprRef conservativeBetween(const Family &Fam, const std::string &Op1,
                              const std::string &Op2) const;

private:
  ExprRef betweenOf(const Family &Fam, const std::string &Op1,
                    const std::string &Op2) const;

  void bindArgs(Env &E, const Family &Fam, const std::string &Op1,
                const ArgList &A1, const Value &R1, const std::string &Op2,
                const ArgList &A2) const;

  /// Both condition dialects of one memoized pair.
  struct PairConditions {
    ExprRef Between = nullptr;
    ExprRef Conservative = nullptr;
  };

  /// Catalog entry lookup is a per-query name scan and the conservative
  /// dialect is a fresh rewrite; both are pure in (family, op1, op2), so
  /// they are computed once and memoized. The mutex keeps the checker
  /// usable as a shared const object across gatekeeper threads (the
  /// rewrite interns into the non-thread-safe ExprFactory).
  const PairConditions &pairConditions(const Family &Fam,
                                       const std::string &Op1,
                                       const std::string &Op2) const;

  ExprFactory &F;
  const Catalog &Cat;
  mutable std::mutex MemoMutex;
  mutable std::map<std::tuple<const Family *, std::string, std::string>,
                   PairConditions>
      Memo;
};

} // namespace semcomm

#endif // SEMCOMM_RUNTIME_DYNAMICCHECKER_H
