//===- runtime/IndexedChecker.h - Index-backed condition checks -*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run-time facade over the compiled commutativity index: the same
/// gatekeeper queries DynamicChecker answers by interpreting condition
/// trees, answered by a constant-bitmap test or a straight-line bytecode
/// program (index/CommutativityIndex.h). The interpreted path is kept —
/// selectable per checker — as the reference oracle, and any condition the
/// compiler could not lower (none in the shipped catalog) silently falls
/// back to it, so switching a system onto the index can never change an
/// answer, only its cost.
///
/// Query cost tiers, fastest first:
///  1. constant-bitmap hit (mayCommuteFast on a PairHandle): two bit tests;
///  2. compiled program (PairHandle): one linear bytecode sweep, no
///     allocation;
///  3. name-based facade (mayCommute/commutesExact): adds the per-call
///     name -> operation-index resolution;
///  4. interpreter fallback: DynamicChecker's Env + tree walk.
///
/// A checker instance is not thread-safe (the VM register file and the
/// query counters are mutable); give each thread its own checker over one
/// shared immutable CommutativityIndex.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_RUNTIME_INDEXEDCHECKER_H
#define SEMCOMM_RUNTIME_INDEXEDCHECKER_H

#include "index/CommutativityIndex.h"
#include "index/IndexVM.h"
#include "runtime/DynamicChecker.h"

#include <memory>

namespace semcomm {

/// Evaluates between conditions against live structures via the compiled
/// index, with the tree interpreter as fallback and reference oracle.
class IndexedChecker {
public:
  /// Which machinery answers queries.
  enum class Path : uint8_t {
    Indexed,     ///< Bitmap / bytecode; interpreter only for Unsupported.
    Interpreted, ///< Reference oracle: every query goes to DynamicChecker.
  };

  /// Per-checker query counters (how queries actually resolved).
  ///
  /// The PairHandle fast paths deliberately do NOT count constant-bitmap
  /// hits: that tier's entire value is two loads and a bit test, and a
  /// per-query counter increment is a serializing read-modify-write that
  /// measures ~5x the query itself. The name-based facade (which already
  /// pays a per-call resolve) counts every tier; program runs and
  /// interpreter fallbacks are counted everywhere — their cost amortizes
  /// the increment.
  struct QueryStats {
    uint64_t ConstantHits = 0;         ///< Bitmap answers (facade only).
    uint64_t ProgramRuns = 0;          ///< Answered by a bytecode program.
    uint64_t InterpreterFallbacks = 0; ///< Answered by the interpreter.
    /// Sampled fast-path accounting (see setStatsSampling): every Nth
    /// PairHandle query is classified, making constant-bitmap hit rates
    /// observable on the hot path without a per-query counter.
    uint64_t SampledQueries = 0;
    uint64_t SampledConstantHits = 0;
  };

  /// Compiles a private index from \p C.
  IndexedChecker(ExprFactory &F, const Catalog &C)
      : IndexedChecker(F, C,
                       std::make_shared<const index::CommutativityIndex>(
                           index::CommutativityIndex::compile(C))) {}

  /// Shares \p Idx (e.g. one image loaded by semcommute-indexgen serving
  /// every thread's checker).
  IndexedChecker(ExprFactory &F, const Catalog &C,
                 std::shared_ptr<const index::CommutativityIndex> Idx)
      : Interp(F, C), Idx(std::move(Idx)),
        VM(this->Idx->stats().MaxRegs) {}

  void setPath(Path P) { ActivePath = P; }
  Path path() const { return ActivePath; }

  /// Opt-in sampled accounting for the PairHandle fast paths. The full
  /// QueryStats counters deliberately skip constant-bitmap hits there: a
  /// per-query counter RMW costs ~5x the two-bit test itself. Sampling
  /// classifies only every \p Period -th handle query (rounded up to a
  /// power of two; 0 disables), so hit rates become observable under a
  /// running executor at the cost of one well-predicted branch plus a
  /// non-atomic tick. Estimated totals = Sampled* counters x the period.
  void setStatsSampling(unsigned Period) {
    if (Period == 0) {
      SampleOn = false;
      SampleMask = 0;
      return;
    }
    // Clamp at 2^31: doubling past it would wrap P to 0 and never
    // terminate. Larger requests sample every 2^31st query.
    unsigned P = 1;
    while (P < Period && P < (1u << 31))
      P <<= 1;
    SampleOn = true;
    SampleMask = P - 1; // Period 1 => mask 0: every query sampled.
  }
  unsigned statsSamplingPeriod() const {
    return SampleOn ? SampleMask + 1 : 0;
  }

  /// Same contract as DynamicChecker::mayCommute: the conservative s1-free
  /// between condition of (Op1; Op2) against the live structure only.
  bool mayCommute(const ConcreteStructure &Live, const std::string &Op1,
                  const ArgList &A1, const Value &R1, const std::string &Op2,
                  const ArgList &A2) const;

  /// Same contract as DynamicChecker::commutesExact: the exact between
  /// condition with s1 bound to \p Before.
  bool commutesExact(const StateView &Before, const ConcreteStructure &Live,
                     const std::string &Op1, const ArgList &A1,
                     const Value &R1, const std::string &Op2,
                     const ArgList &A2) const;

  /// A pre-resolved ordered pair: hoists the name -> index resolution out
  /// of hot query loops (a gatekeeper checks the same few pairs millions
  /// of times) and caches the family's raw bitmap / program tables so a
  /// constant-bitmap hit inlines down to two loads and a bit test. Valid
  /// as long as the checker's index is alive.
  struct PairHandle {
    const index::FamilyIndex *FI = nullptr;
    unsigned Op1 = 0, Op2 = 0;
    unsigned NumArgs1 = 0, NumArgs2 = 0;
    unsigned SlotBase = 0; ///< (Op1 * NumOps + Op2) * NumSlotsPerPair.
    const uint64_t *ConstMask = nullptr;
    const uint64_t *ConstVal = nullptr;
    const int32_t *ProgOf = nullptr;
    const index::IndexProgram *Programs = nullptr;
  };

  /// Resolves \p Op1 / \p Op2 of \p Fam; aborts on unknown names (same
  /// policy as Family::opIndex).
  PairHandle resolve(const Family &Fam, const std::string &Op1,
                     const std::string &Op2) const;

  /// mayCommute on a pre-resolved pair (always the indexed machinery).
  bool mayCommuteFast(const PairHandle &H, const ConcreteStructure &Live,
                      const ArgList &A1, const Value &R1,
                      const ArgList &A2) const {
    // Constant bitmap first, before any other setup: the hit is the
    // common case for a hot pair and must stay two loads + a bit test.
    unsigned PS = H.SlotBase + index::SlotBetweenConservative;
    uint64_t Bit = uint64_t(1) << (PS & 63);
    if (H.ConstMask[PS >> 6] & Bit) {
      if (SampleOn && ((++SampleTick & SampleMask) == 0)) {
        ++Stats.SampledQueries;
        ++Stats.SampledConstantHits;
      }
      return (H.ConstVal[PS >> 6] & Bit) != 0;
    }
    if (SampleOn && ((++SampleTick & SampleMask) == 0))
      ++Stats.SampledQueries;
    // The conservative dialect is s1-free by construction, so slot s1
    // stays null: a program compiled for this slot never probes it.
    const StateView *Views[index::NumStateSlots] = {nullptr, &Live, nullptr};
    bool Answered = false;
    bool Result = runProgram(H, PS, A1, R1, A2, Views, Answered);
    if (Answered)
      return Result;
    ++Stats.InterpreterFallbacks;
    return Interp.mayCommute(Live, H.FI->family().Ops[H.Op1].Name, A1, R1,
                             H.FI->family().Ops[H.Op2].Name, A2);
  }

  /// commutesExact on a pre-resolved pair (always the indexed machinery).
  bool commutesExactFast(const PairHandle &H, const StateView &Before,
                         const ConcreteStructure &Live, const ArgList &A1,
                         const Value &R1, const ArgList &A2) const {
    unsigned PS = H.SlotBase + index::SlotBetween;
    uint64_t Bit = uint64_t(1) << (PS & 63);
    if (H.ConstMask[PS >> 6] & Bit) {
      if (SampleOn && ((++SampleTick & SampleMask) == 0)) {
        ++Stats.SampledQueries;
        ++Stats.SampledConstantHits;
      }
      return (H.ConstVal[PS >> 6] & Bit) != 0;
    }
    if (SampleOn && ((++SampleTick & SampleMask) == 0))
      ++Stats.SampledQueries;
    const StateView *Views[index::NumStateSlots] = {&Before, &Live, nullptr};
    bool Answered = false;
    bool Result = runProgram(H, PS, A1, R1, A2, Views, Answered);
    if (Answered)
      return Result;
    ++Stats.InterpreterFallbacks;
    return Interp.commutesExact(Before, Live, H.FI->family().Ops[H.Op1].Name,
                                A1, R1, H.FI->family().Ops[H.Op2].Name, A2);
  }

  const QueryStats &queryStats() const { return Stats; }
  void resetQueryStats() const {
    Stats = QueryStats();
    SampleTick = 0;
  }

  /// The interpreted reference checker (also the fallback target).
  const DynamicChecker &interpreter() const { return Interp; }

  /// The compiled index this checker queries.
  const index::CommutativityIndex &index() const { return *Idx; }

private:
  /// Runs the compiled program for pair-slot \p PS (the caller has
  /// already ruled out a constant-bitmap hit). Sets \p Answered false on
  /// an unsupported slot, leaving the caller to fall back to the
  /// interpreter.
  bool runProgram(const PairHandle &H, unsigned PS, const ArgList &A1,
                  const Value &R1, const ArgList &A2,
                  const StateView *const *Views, bool &Answered) const {
    Answered = true;
    int32_t Pi = H.ProgOf[PS];
    if (Pi < 0) {
      Answered = false;
      return false;
    }

    // Fill the argument-atom bank (see IndexProgram.h for the layout).
    // The bank is a reused member, so every slot a program for this pair
    // can reference must be written each query: both argument runs, r1,
    // and r2 (nulled — its value is unknown between the operations; the
    // compiler never references slots past its pair's layout).
    Value *const Args = ArgBank;
    for (unsigned I = 0; I != H.NumArgs1; ++I)
      Args[I] = A1[I];
    for (unsigned I = 0; I != H.NumArgs2; ++I)
      Args[H.NumArgs1 + I] = A2[I];
    Args[H.NumArgs1 + H.NumArgs2] = R1;
    Args[H.NumArgs1 + H.NumArgs2 + 1] = Value();

    ++Stats.ProgramRuns;
    return VM.runBool(H.Programs[Pi], Args, Views);
  }

  DynamicChecker Interp;
  std::shared_ptr<const index::CommutativityIndex> Idx;
  Path ActivePath = Path::Indexed;
  bool SampleOn = false;   ///< Sampled fast-path stats enabled.
  unsigned SampleMask = 0; ///< Period-1 of sampled stats (power of two).
  mutable index::IndexVM VM;
  mutable Value ArgBank[index::MaxArgSlots]; ///< Reused per-query bank.
  mutable uint64_t SampleTick = 0;
  mutable QueryStats Stats;
};

} // namespace semcomm

#endif // SEMCOMM_RUNTIME_INDEXEDCHECKER_H
