//===- runtime/IndexedChecker.cpp - Index-backed condition checks ---------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "runtime/IndexedChecker.h"

#include <cassert>

using namespace semcomm;
using namespace semcomm::index;

IndexedChecker::PairHandle
IndexedChecker::resolve(const Family &Fam, const std::string &Op1,
                        const std::string &Op2) const {
  PairHandle H;
  H.FI = Idx->familyIndex(Fam);
  assert(H.FI && "family not covered by the compiled index");
  H.Op1 = Fam.opIndex(Op1);
  H.Op2 = Fam.opIndex(Op2);
  H.NumArgs1 = static_cast<unsigned>(Fam.Ops[H.Op1].ArgSorts.size());
  H.NumArgs2 = static_cast<unsigned>(Fam.Ops[H.Op2].ArgSorts.size());
  H.SlotBase = (H.Op1 * H.FI->numOps() + H.Op2) * NumSlotsPerPair;
  H.ConstMask = H.FI->constMaskWords();
  H.ConstVal = H.FI->constValWords();
  H.ProgOf = H.FI->progOfTable();
  H.Programs = H.FI->programTable();
  return H;
}

namespace {

/// Constant-bitmap probe for pair-slot \p PS of \p H; true when the slot
/// is in the bitmap (the answer is then in *Out).
bool constantAt(const IndexedChecker::PairHandle &H, unsigned PS,
                bool *Out) {
  uint64_t Bit = uint64_t(1) << (PS & 63);
  *Out = (H.ConstVal[PS >> 6] & Bit) != 0;
  return (H.ConstMask[PS >> 6] & Bit) != 0;
}

} // namespace

bool IndexedChecker::mayCommute(const ConcreteStructure &Live,
                                const std::string &Op1, const ArgList &A1,
                                const Value &R1, const std::string &Op2,
                                const ArgList &A2) const {
  if (ActivePath == Path::Interpreted) {
    ++Stats.InterpreterFallbacks;
    return Interp.mayCommute(Live, Op1, A1, R1, Op2, A2);
  }
  PairHandle H = resolve(Live.family(), Op1, Op2);
  // The facade keeps full accounting; the handle fast path does not count
  // constant hits (see QueryStats), so probe the bitmap here first.
  bool Const;
  if (constantAt(H, H.SlotBase + index::SlotBetweenConservative, &Const)) {
    ++Stats.ConstantHits;
    return Const;
  }
  return mayCommuteFast(H, Live, A1, R1, A2);
}

bool IndexedChecker::commutesExact(const StateView &Before,
                                   const ConcreteStructure &Live,
                                   const std::string &Op1, const ArgList &A1,
                                   const Value &R1, const std::string &Op2,
                                   const ArgList &A2) const {
  if (ActivePath == Path::Interpreted) {
    ++Stats.InterpreterFallbacks;
    return Interp.commutesExact(Before, Live, Op1, A1, R1, Op2, A2);
  }
  PairHandle H = resolve(Live.family(), Op1, Op2);
  bool Const;
  if (constantAt(H, H.SlotBase + index::SlotBetween, &Const)) {
    ++Stats.ConstantHits;
    return Const;
  }
  return commutesExactFast(H, Before, Live, A1, R1, A2);
}
