//===- runtime/SpeculativeRuntime.h - Commutativity-based txns --*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating usage scenario (§1.2, §1.3, [29,30,31]): a
/// speculative system executes transactions optimistically, uses the
/// commutativity conditions as a *gatekeeper* — an operation may proceed
/// only if it commutes with every uncommitted operation of every other
/// transaction — and, on conflict, rolls a transaction back with the
/// verified inverse operations (or, as the baseline, by restoring a
/// snapshot).
///
/// The paper treats the atomicity mechanism as orthogonal (Ch. 1.5); this
/// runtime therefore simulates transaction interleavings deterministically
/// (round-robin, wound-wait conflict resolution), exercising exactly the
/// condition-evaluation and rollback code paths.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_RUNTIME_SPECULATIVERUNTIME_H
#define SEMCOMM_RUNTIME_SPECULATIVERUNTIME_H

#include "inverse/InverseSpec.h"
#include "runtime/IndexedChecker.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace semcomm {

/// One scripted operation of a transaction.
struct TxOp {
  std::string OpName; ///< A recorded-variant operation of the family.
  ArgList Args;
};

/// A transaction: a straight-line script of operations.
using Transaction = std::vector<TxOp>;

/// How an aborted transaction's effects are undone.
enum class RollbackPolicy : uint8_t {
  Inverses, ///< Undo the log with the verified inverse operations (§1.3).
  Snapshot, ///< Restore a deep copy taken at transaction begin (baseline).
};

/// Execution statistics.
struct RuntimeStats {
  uint64_t OpsExecuted = 0;
  uint64_t GatekeeperChecks = 0;
  uint64_t GatekeeperPasses = 0;
  uint64_t Aborts = 0;
  /// Conflicts hit before a transaction had executed anything: the
  /// transaction merely waits (degenerates to pessimistic serialization
  /// when the gatekeeper is off).
  uint64_t Stalls = 0;
  uint64_t OpsUndone = 0;
  uint64_t SnapshotsTaken = 0;
  uint64_t Commits = 0;
};

/// Deterministic speculative executor over one shared structure.
class SpeculativeRuntime {
public:
  SpeculativeRuntime(ExprFactory &F, const Catalog &C,
                     const StructureFactory &Factory,
                     RollbackPolicy Policy = RollbackPolicy::Inverses);

  /// Runs \p Txns round-robin to completion; returns statistics. The
  /// shared structure retains the committed effects afterwards.
  RuntimeStats run(const std::vector<Transaction> &Txns);

  /// The shared structure (for result inspection).
  const ConcreteStructure &structure() const { return *Shared; }

  /// When true (default), the gatekeeper is consulted; when false, every
  /// pair of concurrent operations conflicts (the no-commutativity
  /// baseline of bench/perf_speculation).
  void setUseCommutativity(bool B) { UseCommutativity = B; }

  /// Which machinery the gatekeeper queries: the compiled commutativity
  /// index (default) or the tree interpreter (reference oracle; also the
  /// no-index baseline of bench/perf_dynamic_check).
  void setCheckerPath(IndexedChecker::Path P) { Checker.setPath(P); }

  /// The gatekeeper's checker (for query statistics and inspection).
  const IndexedChecker &checker() const { return Checker; }

private:
  struct LogEntry {
    std::string OpName;
    ArgList Args;
    Value Ret;
  };
  struct TxState {
    size_t Pc = 0; ///< Next script index.
    std::vector<LogEntry> Log;
    std::unique_ptr<ConcreteStructure> Snapshot;
    bool Committed = false;
  };

  void abortTxn(unsigned T, RuntimeStats &Stats);

  ExprFactory &F;
  IndexedChecker Checker;
  const StructureFactory &Factory;
  RollbackPolicy Policy;
  bool UseCommutativity = true;

  std::unique_ptr<ConcreteStructure> Shared;
  std::vector<InverseSpec> Inverses;
  std::vector<TxState> States;
};

} // namespace semcomm

#endif // SEMCOMM_RUNTIME_SPECULATIVERUNTIME_H
