//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool used to dispatch independent
/// verification jobs (the catalog is embarrassingly parallel: every testing
/// method is verified against its own scenario enumeration). Each worker
/// owns a deque; it pops from the front of its own and steals from the back
/// of a victim's when empty, so long-running jobs (ArrayList pairs dominate)
/// migrate to idle workers instead of serializing behind a single queue.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SUPPORT_THREADPOOL_H
#define SEMCOMM_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace semcomm {

/// Fixed-size work-stealing pool. submit() may be called from any thread,
/// including from inside a running task; wait() blocks until every task
/// submitted so far has finished.
class ThreadPool {
public:
  explicit ThreadPool(unsigned NumThreads = hardwareThreads())
      : Queues(NumThreads == 0 ? 1 : NumThreads) {
    unsigned N = static_cast<unsigned>(Queues.size());
    Workers.reserve(N);
    for (unsigned I = 0; I != N; ++I)
      Workers.emplace_back([this, I] { workerLoop(I); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    wait();
    {
      std::lock_guard<std::mutex> Lock(SleepMutex);
      Stopping = true;
    }
    SleepCV.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  /// Number of worker threads.
  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues \p Task. Tasks are distributed round-robin across worker
  /// deques; idle workers steal, so placement only affects locality.
  void submit(std::function<void()> Task) {
    Pending.fetch_add(1, std::memory_order_relaxed);
    size_t Home = NextQueue.fetch_add(1, std::memory_order_relaxed) %
                  Queues.size();
    {
      std::lock_guard<std::mutex> Lock(Queues[Home].Mutex);
      Queues[Home].Tasks.push_back(std::move(Task));
    }
    // Synchronize with sleeping workers: a worker that found no task under
    // SleepMutex either re-checks after this acquire/release (and sees the
    // push) or is already blocked in wait() (and receives the notify).
    { std::lock_guard<std::mutex> Lock(SleepMutex); }
    SleepCV.notify_one();
  }

  /// Blocks until every task submitted so far has completed. The pool
  /// remains usable afterwards.
  void wait() {
    std::unique_lock<std::mutex> Lock(DoneMutex);
    DoneCV.wait(Lock, [this] {
      return Pending.load(std::memory_order_acquire) == 0;
    });
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareThreads() {
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1 : N;
  }

  /// Runs \p Body(I) for every I in [0, Count) on a transient pool of
  /// \p NumThreads workers. Convenience wrapper for one-shot fan-outs.
  template <typename Fn>
  static void parallelFor(size_t Count, unsigned NumThreads, Fn Body) {
    ThreadPool Pool(NumThreads);
    for (size_t I = 0; I != Count; ++I)
      Pool.submit([Body, I] { Body(I); });
    Pool.wait();
  }

private:
  struct WorkQueue {
    std::mutex Mutex;
    std::deque<std::function<void()>> Tasks;
  };

  bool popFront(size_t QueueIdx, std::function<void()> &Task) {
    WorkQueue &Q = Queues[QueueIdx];
    std::lock_guard<std::mutex> Lock(Q.Mutex);
    if (Q.Tasks.empty())
      return false;
    Task = std::move(Q.Tasks.front());
    Q.Tasks.pop_front();
    return true;
  }

  bool stealBack(size_t VictimIdx, std::function<void()> &Task) {
    WorkQueue &Q = Queues[VictimIdx];
    std::lock_guard<std::mutex> Lock(Q.Mutex);
    if (Q.Tasks.empty())
      return false;
    Task = std::move(Q.Tasks.back());
    Q.Tasks.pop_back();
    return true;
  }

  bool findTask(size_t Self, std::function<void()> &Task) {
    if (popFront(Self, Task))
      return true;
    for (size_t Off = 1; Off != Queues.size(); ++Off)
      if (stealBack((Self + Off) % Queues.size(), Task))
        return true;
    return false;
  }

  void workerLoop(size_t Self) {
    std::function<void()> Task;
    for (;;) {
      if (findTask(Self, Task)) {
        Task();
        Task = nullptr;
        if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> Lock(DoneMutex);
          DoneCV.notify_all();
        }
        continue;
      }
      std::unique_lock<std::mutex> Lock(SleepMutex);
      SleepCV.wait(Lock, [this, Self, &Task] {
        return Stopping || findTask(Self, Task);
      });
      if (Task) {
        Lock.unlock();
        Task();
        Task = nullptr;
        if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> DLock(DoneMutex);
          DoneCV.notify_all();
        }
        continue;
      }
      if (Stopping)
        return;
    }
  }

  std::vector<WorkQueue> Queues;
  std::vector<std::thread> Workers;
  std::atomic<size_t> NextQueue{0};
  std::atomic<size_t> Pending{0};
  std::mutex SleepMutex, DoneMutex;
  std::condition_variable SleepCV, DoneCV;
  bool Stopping = false;
};

} // namespace semcomm

#endif // SEMCOMM_SUPPORT_THREADPOOL_H
