//===- support/Timing.h - Wall-clock stopwatch ------------------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small steady-clock stopwatch used by the verification-time benches
/// (Table 5.8).
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SUPPORT_TIMING_H
#define SEMCOMM_SUPPORT_TIMING_H

#include <chrono>

namespace semcomm {

/// Measures elapsed wall-clock time from construction or the last reset().
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the measurement interval.
  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since construction/reset.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace semcomm

#endif // SEMCOMM_SUPPORT_TIMING_H
