//===- support/Unreachable.h - Fatal internal-error helpers ----*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Provides semcomm_unreachable, an analogue of llvm_unreachable: marks code
/// paths that must never execute if program invariants hold.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SUPPORT_UNREACHABLE_H
#define SEMCOMM_SUPPORT_UNREACHABLE_H

#include <cstdio>
#include <cstdlib>

namespace semcomm {

/// Reports an internal invariant violation and aborts. Never returns.
[[noreturn]] inline void reportUnreachable(const char *Msg, const char *File,
                                           unsigned Line) {
  std::fprintf(stderr, "%s:%u: unreachable executed: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace semcomm

#define semcomm_unreachable(MSG)                                               \
  ::semcomm::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // SEMCOMM_SUPPORT_UNREACHABLE_H
