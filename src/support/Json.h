//===- support/Json.h - Minimal JSON DOM, writer and parser -----*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON value type used by the verification driver's
/// results report (and, later, by the BENCH_*.json emitters). Design goals,
/// in order: exact round-tripping of our own output (object key order is
/// preserved; integers print as integers; doubles print with 17 significant
/// digits), a tiny footprint, and zero external dependencies. It is not a
/// general-purpose validating parser — inputs it rejects yield nullopt, not
/// diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SUPPORT_JSON_H
#define SEMCOMM_SUPPORT_JSON_H

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace semcomm {
namespace json {

/// One JSON value. Arrays and objects own their children; objects preserve
/// insertion order so dump(parse(dump(x))) == dump(x).
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array, Object };

  Value() : K(Kind::Null) {}
  static Value null() { return Value(); }
  static Value boolean(bool B) {
    Value V;
    V.K = Kind::Bool;
    V.B = B;
    return V;
  }
  static Value integer(int64_t N) {
    Value V;
    V.K = Kind::Int;
    V.I = N;
    return V;
  }
  static Value number(double D) {
    Value V;
    V.K = Kind::Double;
    V.D = D;
    return V;
  }
  static Value string(std::string S) {
    Value V;
    V.K = Kind::String;
    V.S = std::move(S);
    return V;
  }
  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  int64_t asInt() const { return K == Kind::Double ? (int64_t)D : I; }
  double asDouble() const { return K == Kind::Int ? (double)I : D; }
  const std::string &asString() const { return S; }

  // Array interface.
  size_t size() const { return Elems.size(); }
  const Value &at(size_t Idx) const { return Elems[Idx]; }
  void push(Value V) { Elems.push_back(std::move(V)); }

  // Object interface.
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }
  void set(const std::string &Key, Value V) {
    for (auto &M : Members)
      if (M.first == Key) {
        M.second = std::move(V);
        return;
      }
    Members.emplace_back(Key, std::move(V));
  }
  /// Member lookup; null sentinel when absent (distinguish with find()).
  const Value *find(const std::string &Key) const {
    for (const auto &M : Members)
      if (M.first == Key)
        return &M.second;
    return nullptr;
  }
  const Value &operator[](const std::string &Key) const {
    static const Value Null;
    const Value *V = find(Key);
    return V ? *V : Null;
  }

  /// Serializes. \p Indent < 0 yields the compact single-line form;
  /// otherwise a pretty form indented by \p Indent spaces per level.
  std::string dump(int Indent = -1) const {
    std::string Out;
    write(Out, Indent, 0);
    return Out;
  }

  /// Parses one JSON document (surrounded by optional whitespace only).
  static std::optional<Value> parse(const std::string &Text) {
    Parser P{Text.c_str(), Text.c_str() + Text.size()};
    Value V;
    if (!P.parseValue(V))
      return std::nullopt;
    P.skipSpace();
    if (P.Cur != P.End)
      return std::nullopt;
    return V;
  }

  friend bool operator==(const Value &A, const Value &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case Kind::Null:
      return true;
    case Kind::Bool:
      return A.B == B.B;
    case Kind::Int:
      return A.I == B.I;
    case Kind::Double:
      return A.D == B.D;
    case Kind::String:
      return A.S == B.S;
    case Kind::Array:
      return A.Elems == B.Elems;
    case Kind::Object:
      return A.Members == B.Members;
    }
    return false;
  }
  friend bool operator!=(const Value &A, const Value &B) { return !(A == B); }

private:
  static void writeEscaped(std::string &Out, const std::string &S) {
    Out += '"';
    for (char C : S) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      case '\r':
        Out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
    Out += '"';
  }

  void write(std::string &Out, int Indent, int Depth) const {
    auto newline = [&](int D) {
      if (Indent < 0)
        return;
      Out += '\n';
      Out.append(static_cast<size_t>(Indent) * D, ' ');
    };
    switch (K) {
    case Kind::Null:
      Out += "null";
      break;
    case Kind::Bool:
      Out += B ? "true" : "false";
      break;
    case Kind::Int: {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(I));
      Out += Buf;
      break;
    }
    case Kind::Double: {
      char Buf[40];
      std::snprintf(Buf, sizeof(Buf), "%.17g", D);
      // Keep a numeric marker so the value re-parses as a double.
      if (!std::strpbrk(Buf, ".eE"))
        std::strcat(Buf, ".0");
      Out += Buf;
      break;
    }
    case Kind::String:
      writeEscaped(Out, S);
      break;
    case Kind::Array:
      if (Elems.empty()) {
        Out += "[]";
        break;
      }
      Out += '[';
      for (size_t Idx = 0; Idx != Elems.size(); ++Idx) {
        if (Idx)
          Out += Indent < 0 ? "," : ",";
        newline(Depth + 1);
        Elems[Idx].write(Out, Indent, Depth + 1);
      }
      newline(Depth);
      Out += ']';
      break;
    case Kind::Object:
      if (Members.empty()) {
        Out += "{}";
        break;
      }
      Out += '{';
      for (size_t Idx = 0; Idx != Members.size(); ++Idx) {
        if (Idx)
          Out += Indent < 0 ? "," : ",";
        newline(Depth + 1);
        writeEscaped(Out, Members[Idx].first);
        Out += Indent < 0 ? ":" : ": ";
        Members[Idx].second.write(Out, Indent, Depth + 1);
      }
      newline(Depth);
      Out += '}';
      break;
    }
  }

  struct Parser {
    const char *Cur, *End;

    void skipSpace() {
      while (Cur != End && (*Cur == ' ' || *Cur == '\t' || *Cur == '\n' ||
                            *Cur == '\r'))
        ++Cur;
    }

    bool literal(const char *Lit) {
      size_t N = std::strlen(Lit);
      if (static_cast<size_t>(End - Cur) < N ||
          std::strncmp(Cur, Lit, N) != 0)
        return false;
      Cur += N;
      return true;
    }

    bool parseString(std::string &Out) {
      if (Cur == End || *Cur != '"')
        return false;
      ++Cur;
      Out.clear();
      while (Cur != End && *Cur != '"') {
        char C = *Cur++;
        if (C != '\\') {
          Out += C;
          continue;
        }
        if (Cur == End)
          return false;
        char E = *Cur++;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (End - Cur < 4)
            return false;
          unsigned Code = 0;
          for (int I = 0; I != 4; ++I) {
            char H = *Cur++;
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= H - '0';
            else if (H >= 'a' && H <= 'f')
              Code |= H - 'a' + 10;
            else if (H >= 'A' && H <= 'F')
              Code |= H - 'A' + 10;
            else
              return false;
          }
          // Our writer only emits \u00XX control escapes; decode the
          // Latin-1 range and reject the rest rather than mis-decode.
          if (Code > 0xFF)
            return false;
          Out += static_cast<char>(Code);
          break;
        }
        default:
          return false;
        }
      }
      if (Cur == End)
        return false;
      ++Cur; // closing quote
      return true;
    }

    bool digits() {
      const char *Start = Cur;
      while (Cur != End && std::isdigit(static_cast<unsigned char>(*Cur)))
        ++Cur;
      return Cur != Start;
    }

    // Strict JSON number grammar: -?int(.frac)?([eE][+-]?exp)?. Anything
    // else must fail the parse rather than convert to a wrong value.
    bool parseNumber(Value &Out) {
      const char *Start = Cur;
      if (Cur != End && *Cur == '-')
        ++Cur;
      if (!digits())
        return false;
      bool IsDouble = false;
      if (Cur != End && *Cur == '.') {
        IsDouble = true;
        ++Cur;
        if (!digits())
          return false;
      }
      if (Cur != End && (*Cur == 'e' || *Cur == 'E')) {
        IsDouble = true;
        ++Cur;
        if (Cur != End && (*Cur == '+' || *Cur == '-'))
          ++Cur;
        if (!digits())
          return false;
      }
      std::string Num(Start, Cur);
      if (IsDouble)
        Out = Value::number(std::strtod(Num.c_str(), nullptr));
      else
        Out = Value::integer(
            static_cast<int64_t>(std::strtoll(Num.c_str(), nullptr, 10)));
      return true;
    }

    bool parseValue(Value &Out) {
      skipSpace();
      if (Cur == End)
        return false;
      switch (*Cur) {
      case 'n':
        return literal("null") ? (Out = Value::null(), true) : false;
      case 't':
        return literal("true") ? (Out = Value::boolean(true), true) : false;
      case 'f':
        return literal("false") ? (Out = Value::boolean(false), true) : false;
      case '"': {
        std::string S;
        if (!parseString(S))
          return false;
        Out = Value::string(std::move(S));
        return true;
      }
      case '[': {
        ++Cur;
        Out = Value::array();
        skipSpace();
        if (Cur != End && *Cur == ']') {
          ++Cur;
          return true;
        }
        for (;;) {
          Value Elem;
          if (!parseValue(Elem))
            return false;
          Out.push(std::move(Elem));
          skipSpace();
          if (Cur == End)
            return false;
          if (*Cur == ',') {
            ++Cur;
            continue;
          }
          if (*Cur == ']') {
            ++Cur;
            return true;
          }
          return false;
        }
      }
      case '{': {
        ++Cur;
        Out = Value::object();
        skipSpace();
        if (Cur != End && *Cur == '}') {
          ++Cur;
          return true;
        }
        for (;;) {
          skipSpace();
          std::string Key;
          if (!parseString(Key))
            return false;
          skipSpace();
          if (Cur == End || *Cur != ':')
            return false;
          ++Cur;
          Value Member;
          if (!parseValue(Member))
            return false;
          Out.set(Key, std::move(Member));
          skipSpace();
          if (Cur == End)
            return false;
          if (*Cur == ',') {
            ++Cur;
            continue;
          }
          if (*Cur == '}') {
            ++Cur;
            return true;
          }
          return false;
        }
      }
      default:
        return parseNumber(Out);
      }
    }
  };

  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<Value> Elems;
  std::vector<std::pair<std::string, Value>> Members;
};

} // namespace json
} // namespace semcomm

#endif // SEMCOMM_SUPPORT_JSON_H
