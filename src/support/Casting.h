//===- support/Casting.h - LLVM-style isa/cast/dyn_cast --------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled opt-in RTTI in the style of llvm/Support/Casting.h. A class
/// hierarchy participates by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SUPPORT_CASTING_H
#define SEMCOMM_SUPPORT_CASTING_H

#include <cassert>

namespace semcomm {

/// Returns true if \p V is an instance of To (per To::classof).
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> used on a null pointer");
  return To::classof(V);
}

/// Checked downcast: asserts that \p V really is a To.
template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<const To *>(V);
}

/// Checking downcast: returns null if \p V is not a To.
template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace semcomm

#endif // SEMCOMM_SUPPORT_CASTING_H
