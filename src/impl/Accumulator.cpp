//===- impl/Accumulator.cpp - Counter with increase/read ------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "impl/Accumulator.h"

#include "support/Unreachable.h"

using namespace semcomm;

Value Accumulator::invoke(const std::string &CallName, const ArgList &Args) {
  if (CallName == "increase") {
    increase(Args[0].asInt());
    return Value::null();
  }
  if (CallName == "read")
    return Value::integer(read());
  semcomm_unreachable("unknown Accumulator operation");
}
