//===- impl/ConcreteStructure.h - Concrete structure interface --*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface of the six concrete data structures the paper
/// verifies (Accumulator, ListSet, HashSet, AssociationList, HashTable,
/// ArrayList). Every structure carries:
///
///  * its Java-style typed operations (declared on the concrete classes),
///  * a generic invoke() used by the refinement checker and the
///    speculative runtime,
///  * the abstraction function a : concrete state -> abstract state
///    (§2.2), and
///  * a representation invariant check (standing in for the paper's
///    full functional verification of the implementations [Zee et al.]).
///
/// Each structure is also a StateView, so the *concrete* dialect of the
/// commutativity conditions (the fourth column of Tables 5.1-5.7) can be
/// evaluated directly against the live structure at run time.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_IMPL_CONCRETESTRUCTURE_H
#define SEMCOMM_IMPL_CONCRETESTRUCTURE_H

#include "spec/Family.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace semcomm {

/// Abstract base of the six verified linked data structures.
class ConcreteStructure : public StateView {
public:
  ~ConcreteStructure() override;

  /// The structure's name ("ListSet", "HashTable", ...).
  virtual std::string name() const = 0;

  /// The interface family this structure implements.
  virtual const Family &family() const = 0;

  /// Invokes the operation with call name \p CallName (e.g. "add",
  /// "remove_at") on this structure. The caller must respect the
  /// operation's precondition.
  virtual Value invoke(const std::string &CallName, const ArgList &Args) = 0;

  /// The abstraction function: the abstract state this concrete state
  /// represents.
  virtual AbstractState abstraction() const = 0;

  /// Checks the representation invariant (bucket residency, acyclicity
  /// within size bounds, element/entry counts, ...).
  virtual bool repOk() const = 0;

  /// Deep copy (the snapshot-rollback baseline of the runtime benches).
  virtual std::unique_ptr<ConcreteStructure> clone() const = 0;
};

/// A named factory for one of the six structures.
struct StructureFactory {
  std::string Name;
  const Family *Fam;
  std::function<std::unique_ptr<ConcreteStructure>()> Make;
};

/// Factories for all six structures, in the paper's order.
std::vector<StructureFactory> allStructureFactories();

} // namespace semcomm

#endif // SEMCOMM_IMPL_CONCRETESTRUCTURE_H
