//===- impl/HashSet.h - Separately-chained hash set -------------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HashSet implements the Set interface with a separately-chained hash
/// table (Fig. 2-1): an array of buckets containing singly-linked lists of
/// elements, resized when the load factor is exceeded. The concrete state
/// (bucket layout, chain order, capacity) varies with operation history;
/// the abstract state — the `contents` ghost set — does not.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_IMPL_HASHSET_H
#define SEMCOMM_IMPL_HASHSET_H

#include "impl/ConcreteStructure.h"

namespace semcomm {

/// A set of objects in a separately-chained hash table.
class HashSet : public ConcreteStructure {
public:
  HashSet();
  HashSet(const HashSet &Other);
  HashSet &operator=(const HashSet &Other);
  ~HashSet() override;

  /// Adds \p V; returns true iff it was absent.
  bool add(const Value &V);
  /// Removes \p V; returns true iff it was present.
  bool remove(const Value &V);

  /// Current bucket count; exposed so tests can observe rehashing.
  size_t capacity() const { return Table.size(); }

  // ConcreteStructure.
  std::string name() const override { return "HashSet"; }
  const Family &family() const override { return setFamily(); }
  Value invoke(const std::string &CallName, const ArgList &Args) override;
  AbstractState abstraction() const override;
  bool repOk() const override;
  std::unique_ptr<ConcreteStructure> clone() const override {
    return std::make_unique<HashSet>(*this);
  }

  // StateView.
  bool contains(const Value &V) const override;
  int64_t size() const override { return Count; }

private:
  struct Node {
    Value Data;
    Node *Next;
  };

  size_t bucketOf(const Value &V, size_t NumBuckets) const;
  void rehash(size_t NewBuckets);
  void clear();
  void copyFrom(const HashSet &Other);

  std::vector<Node *> Table;
  int64_t Count = 0;
};

} // namespace semcomm

#endif // SEMCOMM_IMPL_HASHSET_H
