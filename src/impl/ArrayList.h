//===- impl/ArrayList.h - Growable dense int->obj map -----------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_IMPL_ARRAYLIST_H
#define SEMCOMM_IMPL_ARRAYLIST_H

#include "impl/ConcreteStructure.h"

namespace semcomm {

/// ArrayList implements a map from a dense integer range [0, size) to
/// objects, backed by a growable array with Java-style amortized doubling
/// (Ch. 5). add_at/remove_at shift the suffix; the spare capacity and the
/// stale cells beyond size are concrete-only state the abstraction ignores.
class ArrayList : public ConcreteStructure {
public:
  ArrayList();

  /// Inserts \p V at \p I (0 <= I <= size), shifting the suffix up.
  void addAt(int64_t I, const Value &V);
  /// Removes and returns the element at \p I, shifting the suffix down.
  Value removeAt(int64_t I);
  /// Replaces the element at \p I; returns the previous element.
  Value set(int64_t I, const Value &V);
  /// The element at \p I (0 <= I < size).
  Value get(int64_t I) const;
  /// First index of \p V or -1.
  int64_t indexOf(const Value &V) const { return seqIndexOf(V); }
  /// Last index of \p V or -1.
  int64_t lastIndexOf(const Value &V) const { return seqLastIndexOf(V); }

  /// Backing-array capacity; exposed so tests can observe growth.
  size_t capacity() const { return Data.capacity(); }

  // ConcreteStructure.
  std::string name() const override { return "ArrayList"; }
  const Family &family() const override { return arrayListFamily(); }
  Value invoke(const std::string &CallName, const ArgList &Args) override;
  AbstractState abstraction() const override;
  bool repOk() const override;
  std::unique_ptr<ConcreteStructure> clone() const override {
    return std::make_unique<ArrayList>(*this);
  }

  // StateView.
  int64_t seqLen() const override { return static_cast<int64_t>(Count); }
  Value seqAt(int64_t I) const override;
  int64_t seqIndexOf(const Value &V) const override;
  int64_t seqLastIndexOf(const Value &V) const override;
  int64_t size() const override { return static_cast<int64_t>(Count); }

private:
  void ensureCapacity(size_t Needed);

  /// Backing store; cells at index >= Count are stale concrete-only junk.
  std::vector<Value> Data;
  size_t Count = 0;
};

} // namespace semcomm

#endif // SEMCOMM_IMPL_ARRAYLIST_H
