//===- impl/AssociationList.cpp - Linked-list key/value map ----------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "impl/AssociationList.h"

#include "support/Unreachable.h"

#include <set>

using namespace semcomm;

AssociationList::AssociationList(const AssociationList &Other) {
  Node **Tail = &First;
  for (Node *N = Other.First; N; N = N->Next) {
    *Tail = new Node{N->Key, N->Val, nullptr};
    Tail = &(*Tail)->Next;
  }
  Count = Other.Count;
}

AssociationList &AssociationList::operator=(const AssociationList &Other) {
  if (this == &Other)
    return *this;
  clear();
  AssociationList Copy(Other);
  First = Copy.First;
  Count = Copy.Count;
  Copy.First = nullptr;
  Copy.Count = 0;
  return *this;
}

AssociationList::~AssociationList() { clear(); }

void AssociationList::clear() {
  Node *N = First;
  while (N) {
    Node *Next = N->Next;
    delete N;
    N = Next;
  }
  First = nullptr;
  Count = 0;
}

Value AssociationList::put(const Value &K, const Value &V) {
  for (Node *N = First; N; N = N->Next)
    if (N->Key == K) {
      Value Old = N->Val;
      N->Val = V;
      return Old;
    }
  First = new Node{K, V, First};
  ++Count;
  return Value::null();
}

Value AssociationList::remove(const Value &K) {
  for (Node **Link = &First; *Link; Link = &(*Link)->Next)
    if ((*Link)->Key == K) {
      Node *Victim = *Link;
      Value Old = Victim->Val;
      *Link = Victim->Next;
      delete Victim;
      --Count;
      return Old;
    }
  return Value::null();
}

Value AssociationList::mapGet(const Value &K) const {
  for (Node *N = First; N; N = N->Next)
    if (N->Key == K)
      return N->Val;
  return Value::null();
}

bool AssociationList::mapHasKey(const Value &K) const {
  for (Node *N = First; N; N = N->Next)
    if (N->Key == K)
      return true;
  return false;
}

Value AssociationList::invoke(const std::string &CallName,
                              const ArgList &Args) {
  if (CallName == "put")
    return put(Args[0], Args[1]);
  if (CallName == "remove")
    return remove(Args[0]);
  if (CallName == "get")
    return get(Args[0]);
  if (CallName == "containsKey")
    return Value::boolean(containsKey(Args[0]));
  if (CallName == "size")
    return Value::integer(size());
  semcomm_unreachable("unknown AssociationList operation");
}

AbstractState AssociationList::abstraction() const {
  AbstractState S = AbstractState::makeMap();
  for (Node *N = First; N; N = N->Next)
    S.mapPut(N->Key, N->Val);
  return S;
}

bool AssociationList::repOk() const {
  // Keys are unique; no null values; Count matches; acyclic within bound.
  std::set<Value> Keys;
  int64_t Length = 0;
  for (Node *N = First; N; N = N->Next) {
    if (!Keys.insert(N->Key).second)
      return false;
    if (N->Val.isNull())
      return false;
    if (++Length > Count)
      return false;
  }
  return Length == Count;
}
