//===- impl/ListSet.cpp - Singly-linked-list set ---------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "impl/ListSet.h"

#include "support/Unreachable.h"

#include <set>

using namespace semcomm;

ListSet::ListSet(const ListSet &Other) {
  // Copy preserving list order.
  Node **Tail = &First;
  for (Node *N = Other.First; N; N = N->Next) {
    *Tail = new Node{N->Data, nullptr};
    Tail = &(*Tail)->Next;
  }
  Count = Other.Count;
}

ListSet &ListSet::operator=(const ListSet &Other) {
  if (this == &Other)
    return *this;
  clear();
  ListSet Copy(Other);
  First = Copy.First;
  Count = Copy.Count;
  Copy.First = nullptr;
  Copy.Count = 0;
  return *this;
}

ListSet::~ListSet() { clear(); }

void ListSet::clear() {
  Node *N = First;
  while (N) {
    Node *Next = N->Next;
    delete N;
    N = Next;
  }
  First = nullptr;
  Count = 0;
}

bool ListSet::add(const Value &V) {
  for (Node *N = First; N; N = N->Next)
    if (N->Data == V)
      return false;
  First = new Node{V, First};
  ++Count;
  return true;
}

bool ListSet::remove(const Value &V) {
  for (Node **Link = &First; *Link; Link = &(*Link)->Next)
    if ((*Link)->Data == V) {
      Node *Victim = *Link;
      *Link = Victim->Next;
      delete Victim;
      --Count;
      return true;
    }
  return false;
}

bool ListSet::contains(const Value &V) const {
  for (Node *N = First; N; N = N->Next)
    if (N->Data == V)
      return true;
  return false;
}

std::vector<Value> ListSet::elementsInListOrder() const {
  std::vector<Value> Out;
  for (Node *N = First; N; N = N->Next)
    Out.push_back(N->Data);
  return Out;
}

Value ListSet::invoke(const std::string &CallName, const ArgList &Args) {
  if (CallName == "add")
    return Value::boolean(add(Args[0]));
  if (CallName == "remove")
    return Value::boolean(remove(Args[0]));
  if (CallName == "contains")
    return Value::boolean(contains(Args[0]));
  if (CallName == "size")
    return Value::integer(size());
  semcomm_unreachable("unknown ListSet operation");
}

AbstractState ListSet::abstraction() const {
  AbstractState S = AbstractState::makeSet();
  for (Node *N = First; N; N = N->Next)
    S.setInsert(N->Data);
  return S;
}

bool ListSet::repOk() const {
  // No duplicates; Count matches the list length; the list is acyclic
  // (guaranteed if the traversal terminates within Count steps).
  std::set<Value> Seen;
  int64_t Length = 0;
  for (Node *N = First; N; N = N->Next) {
    if (!Seen.insert(N->Data).second)
      return false;
    if (++Length > Count)
      return false;
  }
  return Length == Count;
}
