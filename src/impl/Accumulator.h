//===- impl/Accumulator.h - Counter with increase/read ----------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_IMPL_ACCUMULATOR_H
#define SEMCOMM_IMPL_ACCUMULATOR_H

#include "impl/ConcreteStructure.h"

namespace semcomm {

/// The Accumulator of Ch. 5: a counter clients can increase and read.
class Accumulator : public ConcreteStructure {
public:
  Accumulator() = default;

  /// Adds \p V to the counter.
  void increase(int64_t V) { Total += V; }
  /// Returns the counter value.
  int64_t read() const { return Total; }

  // ConcreteStructure.
  std::string name() const override { return "Accumulator"; }
  const Family &family() const override { return accumulatorFamily(); }
  Value invoke(const std::string &CallName, const ArgList &Args) override;
  AbstractState abstraction() const override {
    return AbstractState::makeCounter(Total);
  }
  bool repOk() const override { return true; }
  std::unique_ptr<ConcreteStructure> clone() const override {
    return std::make_unique<Accumulator>(*this);
  }

  // StateView (concrete-dialect condition evaluation).
  int64_t counter() const override { return Total; }

private:
  int64_t Total = 0;
};

} // namespace semcomm

#endif // SEMCOMM_IMPL_ACCUMULATOR_H
