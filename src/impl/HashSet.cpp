//===- impl/HashSet.cpp - Separately-chained hash set ----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "impl/HashSet.h"

#include "support/Unreachable.h"

#include <functional>
#include <set>

using namespace semcomm;

static const size_t InitialBuckets = 4;

HashSet::HashSet() : Table(InitialBuckets, nullptr) {}

HashSet::HashSet(const HashSet &Other) { copyFrom(Other); }

HashSet &HashSet::operator=(const HashSet &Other) {
  if (this == &Other)
    return *this;
  clear();
  copyFrom(Other);
  return *this;
}

HashSet::~HashSet() { clear(); }

void HashSet::copyFrom(const HashSet &Other) {
  Table.assign(Other.Table.size(), nullptr);
  for (size_t B = 0; B != Other.Table.size(); ++B) {
    Node **Tail = &Table[B];
    for (Node *N = Other.Table[B]; N; N = N->Next) {
      *Tail = new Node{N->Data, nullptr};
      Tail = &(*Tail)->Next;
    }
  }
  Count = Other.Count;
}

void HashSet::clear() {
  for (Node *&Bucket : Table) {
    Node *N = Bucket;
    while (N) {
      Node *Next = N->Next;
      delete N;
      N = Next;
    }
    Bucket = nullptr;
  }
  Count = 0;
}

size_t HashSet::bucketOf(const Value &V, size_t NumBuckets) const {
  return std::hash<Value>()(V) % NumBuckets;
}

void HashSet::rehash(size_t NewBuckets) {
  std::vector<Node *> NewTable(NewBuckets, nullptr);
  for (Node *Bucket : Table) {
    Node *N = Bucket;
    while (N) {
      Node *Next = N->Next;
      size_t B = bucketOf(N->Data, NewBuckets);
      N->Next = NewTable[B];
      NewTable[B] = N;
      N = Next;
    }
  }
  Table = std::move(NewTable);
}

bool HashSet::add(const Value &V) {
  size_t B = bucketOf(V, Table.size());
  for (Node *N = Table[B]; N; N = N->Next)
    if (N->Data == V)
      return false;
  Table[B] = new Node{V, Table[B]};
  ++Count;
  // Java-style resize at load factor 0.75.
  if (static_cast<size_t>(Count) * 4 > Table.size() * 3)
    rehash(Table.size() * 2);
  return true;
}

bool HashSet::remove(const Value &V) {
  size_t B = bucketOf(V, Table.size());
  for (Node **Link = &Table[B]; *Link; Link = &(*Link)->Next)
    if ((*Link)->Data == V) {
      Node *Victim = *Link;
      *Link = Victim->Next;
      delete Victim;
      --Count;
      return true;
    }
  return false;
}

bool HashSet::contains(const Value &V) const {
  for (Node *N = Table[bucketOf(V, Table.size())]; N; N = N->Next)
    if (N->Data == V)
      return true;
  return false;
}

Value HashSet::invoke(const std::string &CallName, const ArgList &Args) {
  if (CallName == "add")
    return Value::boolean(add(Args[0]));
  if (CallName == "remove")
    return Value::boolean(remove(Args[0]));
  if (CallName == "contains")
    return Value::boolean(contains(Args[0]));
  if (CallName == "size")
    return Value::integer(size());
  semcomm_unreachable("unknown HashSet operation");
}

AbstractState HashSet::abstraction() const {
  AbstractState S = AbstractState::makeSet();
  for (Node *Bucket : Table)
    for (Node *N = Bucket; N; N = N->Next)
      S.setInsert(N->Data);
  return S;
}

bool HashSet::repOk() const {
  // Every node resides in the bucket its hash selects; no duplicates; the
  // element count matches; chains are acyclic within the count bound.
  std::set<Value> Seen;
  int64_t Length = 0;
  for (size_t B = 0; B != Table.size(); ++B)
    for (Node *N = Table[B]; N; N = N->Next) {
      if (bucketOf(N->Data, Table.size()) != B)
        return false;
      if (!Seen.insert(N->Data).second)
        return false;
      if (++Length > Count)
        return false;
    }
  return Length == Count;
}
