//===- impl/ListSet.h - Singly-linked-list set -------------------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ListSet implements the Set interface with a singly-linked list, the
/// paper's canonical example of semantic-but-not-concrete commutativity:
/// two insertion orders produce different lists yet the same abstract set
/// (§1.1, Fig. 4-1).
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_IMPL_LISTSET_H
#define SEMCOMM_IMPL_LISTSET_H

#include "impl/ConcreteStructure.h"

namespace semcomm {

/// A set of objects stored as an unsorted singly-linked list without
/// duplicates; new elements are prepended.
class ListSet : public ConcreteStructure {
public:
  ListSet() = default;
  ListSet(const ListSet &Other);
  ListSet &operator=(const ListSet &Other);
  ~ListSet() override;

  /// Adds \p V; returns true iff it was absent.
  bool add(const Value &V);
  /// Removes \p V; returns true iff it was present.
  bool remove(const Value &V);

  /// The elements in list (insertion-dependent) order; exposes the
  /// concrete representation for Fig. 4-1 style demonstrations.
  std::vector<Value> elementsInListOrder() const;

  // ConcreteStructure.
  std::string name() const override { return "ListSet"; }
  const Family &family() const override { return setFamily(); }
  Value invoke(const std::string &CallName, const ArgList &Args) override;
  AbstractState abstraction() const override;
  bool repOk() const override;
  std::unique_ptr<ConcreteStructure> clone() const override {
    return std::make_unique<ListSet>(*this);
  }

  // StateView; size() doubles as the Java-style accessor.
  bool contains(const Value &V) const override;
  int64_t size() const override { return Count; }

private:
  struct Node {
    Value Data;
    Node *Next;
  };

  void clear();

  Node *First = nullptr;
  int64_t Count = 0;
};

} // namespace semcomm

#endif // SEMCOMM_IMPL_LISTSET_H
