//===- impl/Registry.cpp - The six verified structures ----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "impl/Accumulator.h"
#include "impl/ArrayList.h"
#include "impl/AssociationList.h"
#include "impl/HashSet.h"
#include "impl/HashTable.h"
#include "impl/ListSet.h"

using namespace semcomm;

ConcreteStructure::~ConcreteStructure() = default;

std::vector<StructureFactory> semcomm::allStructureFactories() {
  std::vector<StructureFactory> Factories;
  Factories.push_back({"Accumulator", &accumulatorFamily(),
                       [] { return std::make_unique<Accumulator>(); }});
  Factories.push_back(
      {"ListSet", &setFamily(), [] { return std::make_unique<ListSet>(); }});
  Factories.push_back(
      {"HashSet", &setFamily(), [] { return std::make_unique<HashSet>(); }});
  Factories.push_back({"AssociationList", &mapFamily(),
                       [] { return std::make_unique<AssociationList>(); }});
  Factories.push_back({"HashTable", &mapFamily(),
                       [] { return std::make_unique<HashTable>(); }});
  Factories.push_back({"ArrayList", &arrayListFamily(),
                       [] { return std::make_unique<ArrayList>(); }});
  return Factories;
}
