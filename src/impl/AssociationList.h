//===- impl/AssociationList.h - Linked-list key/value map -------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_IMPL_ASSOCIATIONLIST_H
#define SEMCOMM_IMPL_ASSOCIATIONLIST_H

#include "impl/ConcreteStructure.h"

namespace semcomm {

/// AssociationList implements the Map interface with a singly-linked list
/// of key/value pairs (Ch. 5); new bindings are prepended.
class AssociationList : public ConcreteStructure {
public:
  AssociationList() = default;
  AssociationList(const AssociationList &Other);
  AssociationList &operator=(const AssociationList &Other);
  ~AssociationList() override;

  /// Binds \p K to \p V; returns the previous value or null.
  Value put(const Value &K, const Value &V);
  /// Unbinds \p K; returns the previous value or null.
  Value remove(const Value &K);
  /// The value bound to \p K, or null.
  Value get(const Value &K) const { return mapGet(K); }
  /// Whether \p K is bound.
  bool containsKey(const Value &K) const { return mapHasKey(K); }

  // ConcreteStructure.
  std::string name() const override { return "AssociationList"; }
  const Family &family() const override { return mapFamily(); }
  Value invoke(const std::string &CallName, const ArgList &Args) override;
  AbstractState abstraction() const override;
  bool repOk() const override;
  std::unique_ptr<ConcreteStructure> clone() const override {
    return std::make_unique<AssociationList>(*this);
  }

  // StateView.
  Value mapGet(const Value &K) const override;
  bool mapHasKey(const Value &K) const override;
  int64_t size() const override { return Count; }

private:
  struct Node {
    Value Key;
    Value Val;
    Node *Next;
  };

  void clear();

  Node *First = nullptr;
  int64_t Count = 0;
};

} // namespace semcomm

#endif // SEMCOMM_IMPL_ASSOCIATIONLIST_H
