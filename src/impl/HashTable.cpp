//===- impl/HashTable.cpp - Separately-chained hash map ---------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "impl/HashTable.h"

#include "support/Unreachable.h"

#include <functional>
#include <set>

using namespace semcomm;

static const size_t InitialBuckets = 4;

HashTable::HashTable() : Table(InitialBuckets, nullptr) {}

HashTable::HashTable(const HashTable &Other) { copyFrom(Other); }

HashTable &HashTable::operator=(const HashTable &Other) {
  if (this == &Other)
    return *this;
  clear();
  copyFrom(Other);
  return *this;
}

HashTable::~HashTable() { clear(); }

void HashTable::copyFrom(const HashTable &Other) {
  Table.assign(Other.Table.size(), nullptr);
  for (size_t B = 0; B != Other.Table.size(); ++B) {
    Node **Tail = &Table[B];
    for (Node *N = Other.Table[B]; N; N = N->Next) {
      *Tail = new Node{N->Key, N->Val, nullptr};
      Tail = &(*Tail)->Next;
    }
  }
  Count = Other.Count;
}

void HashTable::clear() {
  for (Node *&Bucket : Table) {
    Node *N = Bucket;
    while (N) {
      Node *Next = N->Next;
      delete N;
      N = Next;
    }
    Bucket = nullptr;
  }
  Count = 0;
}

size_t HashTable::bucketOf(const Value &K, size_t NumBuckets) const {
  return std::hash<Value>()(K) % NumBuckets;
}

void HashTable::rehash(size_t NewBuckets) {
  std::vector<Node *> NewTable(NewBuckets, nullptr);
  for (Node *Bucket : Table) {
    Node *N = Bucket;
    while (N) {
      Node *Next = N->Next;
      size_t B = bucketOf(N->Key, NewBuckets);
      N->Next = NewTable[B];
      NewTable[B] = N;
      N = Next;
    }
  }
  Table = std::move(NewTable);
}

Value HashTable::put(const Value &K, const Value &V) {
  size_t B = bucketOf(K, Table.size());
  for (Node *N = Table[B]; N; N = N->Next)
    if (N->Key == K) {
      Value Old = N->Val;
      N->Val = V;
      return Old;
    }
  Table[B] = new Node{K, V, Table[B]};
  ++Count;
  if (static_cast<size_t>(Count) * 4 > Table.size() * 3)
    rehash(Table.size() * 2);
  return Value::null();
}

Value HashTable::remove(const Value &K) {
  size_t B = bucketOf(K, Table.size());
  for (Node **Link = &Table[B]; *Link; Link = &(*Link)->Next)
    if ((*Link)->Key == K) {
      Node *Victim = *Link;
      Value Old = Victim->Val;
      *Link = Victim->Next;
      delete Victim;
      --Count;
      return Old;
    }
  return Value::null();
}

Value HashTable::mapGet(const Value &K) const {
  for (Node *N = Table[bucketOf(K, Table.size())]; N; N = N->Next)
    if (N->Key == K)
      return N->Val;
  return Value::null();
}

bool HashTable::mapHasKey(const Value &K) const {
  for (Node *N = Table[bucketOf(K, Table.size())]; N; N = N->Next)
    if (N->Key == K)
      return true;
  return false;
}

Value HashTable::invoke(const std::string &CallName, const ArgList &Args) {
  if (CallName == "put")
    return put(Args[0], Args[1]);
  if (CallName == "remove")
    return remove(Args[0]);
  if (CallName == "get")
    return get(Args[0]);
  if (CallName == "containsKey")
    return Value::boolean(containsKey(Args[0]));
  if (CallName == "size")
    return Value::integer(size());
  semcomm_unreachable("unknown HashTable operation");
}

AbstractState HashTable::abstraction() const {
  AbstractState S = AbstractState::makeMap();
  for (Node *Bucket : Table)
    for (Node *N = Bucket; N; N = N->Next)
      S.mapPut(N->Key, N->Val);
  return S;
}

bool HashTable::repOk() const {
  std::set<Value> Keys;
  int64_t Length = 0;
  for (size_t B = 0; B != Table.size(); ++B)
    for (Node *N = Table[B]; N; N = N->Next) {
      if (bucketOf(N->Key, Table.size()) != B)
        return false;
      if (!Keys.insert(N->Key).second)
        return false;
      if (N->Val.isNull())
        return false;
      if (++Length > Count)
        return false;
    }
  return Length == Count;
}
