//===- impl/HashTable.h - Separately-chained hash map -----------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_IMPL_HASHTABLE_H
#define SEMCOMM_IMPL_HASHTABLE_H

#include "impl/ConcreteStructure.h"

namespace semcomm {

/// HashTable implements the Map interface with a separately-chained hash
/// table (Ch. 5): an array of singly-linked key/value chains with a hash
/// function mapping keys to chains, resized under load.
class HashTable : public ConcreteStructure {
public:
  HashTable();
  HashTable(const HashTable &Other);
  HashTable &operator=(const HashTable &Other);
  ~HashTable() override;

  /// Binds \p K to \p V; returns the previous value or null.
  Value put(const Value &K, const Value &V);
  /// Unbinds \p K; returns the previous value or null.
  Value remove(const Value &K);
  /// The value bound to \p K, or null.
  Value get(const Value &K) const { return mapGet(K); }
  /// Whether \p K is bound.
  bool containsKey(const Value &K) const { return mapHasKey(K); }

  /// Current bucket count; exposed so tests can observe rehashing.
  size_t capacity() const { return Table.size(); }

  // ConcreteStructure.
  std::string name() const override { return "HashTable"; }
  const Family &family() const override { return mapFamily(); }
  Value invoke(const std::string &CallName, const ArgList &Args) override;
  AbstractState abstraction() const override;
  bool repOk() const override;
  std::unique_ptr<ConcreteStructure> clone() const override {
    return std::make_unique<HashTable>(*this);
  }

  // StateView.
  Value mapGet(const Value &K) const override;
  bool mapHasKey(const Value &K) const override;
  int64_t size() const override { return Count; }

private:
  struct Node {
    Value Key;
    Value Val;
    Node *Next;
  };

  size_t bucketOf(const Value &K, size_t NumBuckets) const;
  void rehash(size_t NewBuckets);
  void clear();
  void copyFrom(const HashTable &Other);

  std::vector<Node *> Table;
  int64_t Count = 0;
};

} // namespace semcomm

#endif // SEMCOMM_IMPL_HASHTABLE_H
