//===- impl/ArrayList.cpp - Growable dense int->obj map --------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "impl/ArrayList.h"

#include "support/Unreachable.h"

#include <cassert>

using namespace semcomm;

ArrayList::ArrayList() { Data.reserve(4); }

void ArrayList::ensureCapacity(size_t Needed) {
  if (Needed > Data.capacity())
    Data.reserve(Data.capacity() * 2 > Needed ? Data.capacity() * 2 : Needed);
}

void ArrayList::addAt(int64_t I, const Value &V) {
  assert(I >= 0 && static_cast<size_t>(I) <= Count &&
         "add_at index out of range");
  ensureCapacity(Count + 1);
  Data.resize(Count + 1);
  for (size_t J = Count; J > static_cast<size_t>(I); --J)
    Data[J] = Data[J - 1];
  Data[static_cast<size_t>(I)] = V;
  ++Count;
}

Value ArrayList::removeAt(int64_t I) {
  assert(I >= 0 && static_cast<size_t>(I) < Count &&
         "remove_at index out of range");
  Value Old = Data[static_cast<size_t>(I)];
  for (size_t J = static_cast<size_t>(I); J + 1 < Count; ++J)
    Data[J] = Data[J + 1];
  --Count;
  // Leave the stale tail cell in place, as a Java array would.
  return Old;
}

Value ArrayList::set(int64_t I, const Value &V) {
  assert(I >= 0 && static_cast<size_t>(I) < Count && "set index out of range");
  Value Old = Data[static_cast<size_t>(I)];
  Data[static_cast<size_t>(I)] = V;
  return Old;
}

Value ArrayList::get(int64_t I) const {
  assert(I >= 0 && static_cast<size_t>(I) < Count && "get index out of range");
  return Data[static_cast<size_t>(I)];
}

Value ArrayList::seqAt(int64_t I) const {
  if (I < 0 || static_cast<size_t>(I) >= Count)
    return Value::undef();
  return Data[static_cast<size_t>(I)];
}

int64_t ArrayList::seqIndexOf(const Value &V) const {
  for (size_t I = 0; I != Count; ++I)
    if (Data[I] == V)
      return static_cast<int64_t>(I);
  return -1;
}

int64_t ArrayList::seqLastIndexOf(const Value &V) const {
  for (size_t I = Count; I != 0; --I)
    if (Data[I - 1] == V)
      return static_cast<int64_t>(I - 1);
  return -1;
}

Value ArrayList::invoke(const std::string &CallName, const ArgList &Args) {
  if (CallName == "add_at") {
    addAt(Args[0].asInt(), Args[1]);
    return Value::null();
  }
  if (CallName == "remove_at")
    return removeAt(Args[0].asInt());
  if (CallName == "set")
    return set(Args[0].asInt(), Args[1]);
  if (CallName == "get")
    return get(Args[0].asInt());
  if (CallName == "indexOf")
    return Value::integer(indexOf(Args[0]));
  if (CallName == "lastIndexOf")
    return Value::integer(lastIndexOf(Args[0]));
  if (CallName == "size")
    return Value::integer(size());
  semcomm_unreachable("unknown ArrayList operation");
}

AbstractState ArrayList::abstraction() const {
  AbstractState S = AbstractState::makeSeq();
  for (size_t I = 0; I != Count; ++I)
    S.seqInsert(S.seqLen(), Data[I]);
  return S;
}

bool ArrayList::repOk() const {
  // Live cells hold non-null, defined values; Count within backing store.
  if (Count > Data.size())
    return false;
  for (size_t I = 0; I != Count; ++I)
    if (Data[I].isNull() || Data[I].isUndef())
      return false;
  return true;
}
