//===- index/IndexVM.h - Compiled-condition evaluator -----------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compact register machine that executes IndexProgram bytecode: one
/// linear sweep over the instructions, a preallocated register file, no
/// branches in the evaluated logic and no per-query allocation. The
/// semantics totalize exactly the way the tree interpreter's value domain
/// does — Eq is semantic equality (Undef equals nothing), probes are
/// total (seqAt out of range yields Undef, mapGet of an absent key yields
/// null) — so a compiled program computes the same boolean the
/// interpreter would, without the interpreter's short-circuit control
/// flow (see the soundness note in IndexProgram.h).
///
/// The VM is the only mutable state of the indexed query path; give each
/// thread its own (the index itself is immutable and shared).
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_INDEX_INDEXVM_H
#define SEMCOMM_INDEX_INDEXVM_H

#include "index/IndexProgram.h"
#include "logic/StateView.h"
#include "logic/Value.h"

#include <cassert>

namespace semcomm {
namespace index {

/// Executes compiled condition programs against an argument bank and the
/// s1/s2/s3 state slots.
///
/// The register file is inline (MaxVMRegs slots), not heap-allocated: a
/// query interleaves stores into the caller's argument bank with loads
/// and stores here, and keeping both at fixed relative offsets avoids
/// the run-to-run 4K-aliasing stalls a heap-placed file is exposed to.
class IndexVM {
public:
  /// \p MaxRegs must be at least the largest numRegs() of any program this
  /// VM will run (IndexStats::MaxRegs for a whole index) and at most
  /// MaxVMRegs (the compiler never emits past it; parse() rejects it).
  explicit IndexVM(unsigned MaxRegs) {
    assert(MaxRegs <= MaxVMRegs && "program register ceiling exceeded");
    (void)MaxRegs;
  }

  /// Runs \p P and returns its Bool result. \p Args is the argument-atom
  /// bank (op1 args, op2 args, r1, r2 — see IndexProgram.h); \p States
  /// holds the s1/s2/s3 StateViews (unreferenced slots may be null).
  ///
  /// Dispatch is token-threaded where the compiler supports computed goto
  /// (GCC/Clang): every handler ends in its own indirect jump, so the
  /// branch predictor learns the per-site opcode successor instead of
  /// funnelling every transition through one switch. A query runs a short
  /// program millions of times, which is exactly the regime where this
  /// halves the per-instruction cost.
  bool runBool(const IndexProgram &P, const Value *Args,
               const StateView *const *States) {
    assert(P.numRegs() <= MaxVMRegs && "register file too small");
    Value *const R = Regs;
    const IInstr *IP = P.Code.data();
    const IInstr *const End = IP + P.Code.size();
    Value *W = R;
    // Operand decode: registers or direct argument-bank reads (see the
    // OperandArgBit encoding in IndexProgram.h).
    auto V = [&](uint16_t T) -> const Value & {
      return (T & OperandArgBit) ? Args[T & OperandIndexMask] : R[T];
    };

#if defined(__GNUC__) || defined(__clang__)
    static const void *const Tbl[NumIOpcodes] = {
        &&L_ConstBool, &&L_ConstInt,   &&L_ConstNull,   &&L_LoadArg,
        &&L_Add,       &&L_Sub,        &&L_Neg,         &&L_Eq,
        &&L_Ne,        &&L_Lt,         &&L_Le,          &&L_Not,
        &&L_And,       &&L_Or,         &&L_Implies,     &&L_Iff,
        &&L_Select,    &&L_SetContains, &&L_MapGet,     &&L_MapHasKey,
        &&L_SeqAt,     &&L_SeqLen,     &&L_SeqIndexOf,  &&L_SeqLastIndexOf,
        &&L_StateSize, &&L_CounterValue};
#define SEMCOMM_VM_NEXT()                                                      \
  do {                                                                         \
    if (IP == End)                                                             \
      goto L_Done;                                                             \
    goto *Tbl[static_cast<unsigned>(IP->Op)];                                  \
  } while (0)

    SEMCOMM_VM_NEXT();
  L_ConstBool: {
    const IInstr &I = *IP++;
    *W++ = Value::boolean(I.Imm != 0);
    SEMCOMM_VM_NEXT();
  }
  L_ConstInt: {
    const IInstr &I = *IP++;
    *W++ = Value::integer(I.Imm);
    SEMCOMM_VM_NEXT();
  }
  L_ConstNull: {
    ++IP;
    *W++ = Value::null();
    SEMCOMM_VM_NEXT();
  }
  L_LoadArg: {
    const IInstr &I = *IP++;
    *W++ = Args[I.A];
    SEMCOMM_VM_NEXT();
  }
  L_Add: {
    const IInstr &I = *IP++;
    *W++ = Value::integer(V(I.A).asInt() + V(I.B).asInt());
    SEMCOMM_VM_NEXT();
  }
  L_Sub: {
    const IInstr &I = *IP++;
    *W++ = Value::integer(V(I.A).asInt() - V(I.B).asInt());
    SEMCOMM_VM_NEXT();
  }
  L_Neg: {
    const IInstr &I = *IP++;
    *W++ = Value::integer(-V(I.A).asInt());
    SEMCOMM_VM_NEXT();
  }
  L_Eq: {
    const IInstr &I = *IP++;
    *W++ = Value::boolean(V(I.A).semanticEquals(V(I.B)));
    SEMCOMM_VM_NEXT();
  }
  L_Ne: {
    const IInstr &I = *IP++;
    *W++ = Value::boolean(!V(I.A).semanticEquals(V(I.B)));
    SEMCOMM_VM_NEXT();
  }
  L_Lt: {
    const IInstr &I = *IP++;
    *W++ = Value::boolean(V(I.A).asInt() < V(I.B).asInt());
    SEMCOMM_VM_NEXT();
  }
  L_Le: {
    const IInstr &I = *IP++;
    *W++ = Value::boolean(V(I.A).asInt() <= V(I.B).asInt());
    SEMCOMM_VM_NEXT();
  }
  L_Not: {
    const IInstr &I = *IP++;
    *W++ = Value::boolean(!V(I.A).asBool());
    SEMCOMM_VM_NEXT();
  }
  L_And: {
    const IInstr &I = *IP++;
    *W++ = Value::boolean(V(I.A).asBool() && V(I.B).asBool());
    SEMCOMM_VM_NEXT();
  }
  L_Or: {
    const IInstr &I = *IP++;
    *W++ = Value::boolean(V(I.A).asBool() || V(I.B).asBool());
    SEMCOMM_VM_NEXT();
  }
  L_Implies: {
    const IInstr &I = *IP++;
    *W++ = Value::boolean(!V(I.A).asBool() || V(I.B).asBool());
    SEMCOMM_VM_NEXT();
  }
  L_Iff: {
    const IInstr &I = *IP++;
    *W++ = Value::boolean(V(I.A).asBool() == V(I.B).asBool());
    SEMCOMM_VM_NEXT();
  }
  L_Select: {
    const IInstr &I = *IP++;
    *W++ = V(I.A).asBool() ? V(I.B) : V(I.C);
    SEMCOMM_VM_NEXT();
  }
  L_SetContains: {
    const IInstr &I = *IP++;
    *W++ = Value::boolean(States[I.St]->contains(V(I.A)));
    SEMCOMM_VM_NEXT();
  }
  L_MapGet: {
    const IInstr &I = *IP++;
    *W++ = States[I.St]->mapGet(V(I.A));
    SEMCOMM_VM_NEXT();
  }
  L_MapHasKey: {
    const IInstr &I = *IP++;
    *W++ = Value::boolean(States[I.St]->mapHasKey(V(I.A)));
    SEMCOMM_VM_NEXT();
  }
  L_SeqAt: {
    const IInstr &I = *IP++;
    *W++ = States[I.St]->seqAt(V(I.A).asInt());
    SEMCOMM_VM_NEXT();
  }
  L_SeqLen: {
    const IInstr &I = *IP++;
    *W++ = Value::integer(States[I.St]->seqLen());
    SEMCOMM_VM_NEXT();
  }
  L_SeqIndexOf: {
    const IInstr &I = *IP++;
    *W++ = Value::integer(States[I.St]->seqIndexOf(V(I.A)));
    SEMCOMM_VM_NEXT();
  }
  L_SeqLastIndexOf: {
    const IInstr &I = *IP++;
    *W++ = Value::integer(States[I.St]->seqLastIndexOf(V(I.A)));
    SEMCOMM_VM_NEXT();
  }
  L_StateSize: {
    const IInstr &I = *IP++;
    *W++ = Value::integer(States[I.St]->size());
    SEMCOMM_VM_NEXT();
  }
  L_CounterValue: {
    const IInstr &I = *IP++;
    *W++ = Value::integer(States[I.St]->counter());
    SEMCOMM_VM_NEXT();
  }
  L_Done:;
#undef SEMCOMM_VM_NEXT

#else // Portable fallback: one switch per instruction.
    for (; IP != End; ++IP) {
      const IInstr &I = *IP;
      Value Out;
      switch (I.Op) {
      case IOpcode::ConstBool:
        Out = Value::boolean(I.Imm != 0);
        break;
      case IOpcode::ConstInt:
        Out = Value::integer(I.Imm);
        break;
      case IOpcode::ConstNull:
        Out = Value::null();
        break;
      case IOpcode::LoadArg:
        Out = Args[I.A];
        break;
      case IOpcode::Add:
        Out = Value::integer(V(I.A).asInt() + V(I.B).asInt());
        break;
      case IOpcode::Sub:
        Out = Value::integer(V(I.A).asInt() - V(I.B).asInt());
        break;
      case IOpcode::Neg:
        Out = Value::integer(-V(I.A).asInt());
        break;
      case IOpcode::Eq:
        Out = Value::boolean(V(I.A).semanticEquals(V(I.B)));
        break;
      case IOpcode::Ne:
        Out = Value::boolean(!V(I.A).semanticEquals(V(I.B)));
        break;
      case IOpcode::Lt:
        Out = Value::boolean(V(I.A).asInt() < V(I.B).asInt());
        break;
      case IOpcode::Le:
        Out = Value::boolean(V(I.A).asInt() <= V(I.B).asInt());
        break;
      case IOpcode::Not:
        Out = Value::boolean(!V(I.A).asBool());
        break;
      case IOpcode::And:
        Out = Value::boolean(V(I.A).asBool() && V(I.B).asBool());
        break;
      case IOpcode::Or:
        Out = Value::boolean(V(I.A).asBool() || V(I.B).asBool());
        break;
      case IOpcode::Implies:
        Out = Value::boolean(!V(I.A).asBool() || V(I.B).asBool());
        break;
      case IOpcode::Iff:
        Out = Value::boolean(V(I.A).asBool() == V(I.B).asBool());
        break;
      case IOpcode::Select:
        Out = V(I.A).asBool() ? V(I.B) : V(I.C);
        break;
      case IOpcode::SetContains:
        Out = Value::boolean(States[I.St]->contains(V(I.A)));
        break;
      case IOpcode::MapGet:
        Out = States[I.St]->mapGet(V(I.A));
        break;
      case IOpcode::MapHasKey:
        Out = Value::boolean(States[I.St]->mapHasKey(V(I.A)));
        break;
      case IOpcode::SeqAt:
        Out = States[I.St]->seqAt(V(I.A).asInt());
        break;
      case IOpcode::SeqLen:
        Out = Value::integer(States[I.St]->seqLen());
        break;
      case IOpcode::SeqIndexOf:
        Out = Value::integer(States[I.St]->seqIndexOf(V(I.A)));
        break;
      case IOpcode::SeqLastIndexOf:
        Out = Value::integer(States[I.St]->seqLastIndexOf(V(I.A)));
        break;
      case IOpcode::StateSize:
        Out = Value::integer(States[I.St]->size());
        break;
      case IOpcode::CounterValue:
        Out = Value::integer(States[I.St]->counter());
        break;
      }
      *W++ = Out;
    }
#endif

    assert(!P.Code.empty() && Regs[P.Code.size() - 1].isBool() &&
           "compiled condition did not evaluate to a boolean");
    return Regs[P.Code.size() - 1].asBool();
  }

  unsigned capacity() const { return MaxVMRegs; }

private:
  Value Regs[MaxVMRegs];
};

} // namespace index
} // namespace semcomm

#endif // SEMCOMM_INDEX_INDEXVM_H
