//===- index/CommutativityIndex.h - Compiled condition index ----*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verified catalog answers "do op1/op2 commute under condition phi";
/// a production runtime asks that question millions of times per second
/// with concrete arguments. This module is the PesTrie move for that
/// query: precompute a persistent, compressed index offline so each
/// online query is a near-constant lookup.
///
/// For every ordered operation pair of every family, the compiler lowers
/// four condition dialects into IndexProgram bytecode:
///
///   slot 0  before  (exact)
///   slot 1  between (exact; references the saved pre-state s1)
///   slot 2  after   (exact)
///   slot 3  between (conservative s1-free dialect; the run-time
///                    gatekeeper's condition, §4.1.2 option 2)
///
/// Conditions that are constant (the catalog's many `true` entries, and
/// conservative dialects that fold to `false` because every clause needed
/// s1) never get a program at all: they live in a packed pair x slot
/// bitmap, so those queries are two bit tests. Everything else runs on
/// the register-machine evaluator (IndexVM.h) with no per-query
/// allocation. Conditions outside the compilable fragment (none in the
/// shipped catalog — pinned by IndexTest) are reported Unsupported and
/// fall back to the interpreter at the facade layer.
///
/// The index serializes to a versioned text image (semcommute-indexgen
/// writes it; parse() reloads it and rebinds family singletons by name),
/// and every compiled program is fuzz-cross-checked against
/// logic/Evaluator (IndexFuzz.h), so the index inherits the catalog's
/// verified status.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_INDEX_COMMUTATIVITYINDEX_H
#define SEMCOMM_INDEX_COMMUTATIVITYINDEX_H

#include "commute/Condition.h"
#include "index/IndexProgram.h"

#include <optional>
#include <string>
#include <vector>

namespace semcomm {
namespace index {

/// Per-pair condition slots of the compiled index.
enum : unsigned {
  SlotBefore = 0,
  SlotBetween = 1,
  SlotAfter = 2,
  SlotBetweenConservative = 3,
  NumSlotsPerPair = 4,
};

const char *slotName(unsigned Slot);

/// What a lookup resolved to.
enum class Verdict : uint8_t {
  ConstFalse,  ///< Constant-bitmap hit: never commutes under this slot.
  ConstTrue,   ///< Constant-bitmap hit: always commutes under this slot.
  Program,     ///< Run the returned IndexProgram.
  Unsupported, ///< Not compiled; caller must fall back to the interpreter.
};

/// The compiled image of one family: programs, the constant bitmaps, and
/// the pair x slot dispatch table.
class FamilyIndex {
public:
  const std::string &familyName() const { return Name; }
  const Family &family() const { return *Fam; }
  unsigned numOps() const { return NumOps; }
  unsigned numStructures() const { return NumStructures; }
  unsigned numPrograms() const { return static_cast<unsigned>(Programs.size()); }
  unsigned maxRegs() const { return MaxRegs; }

  /// Operation index by name; returns NumOps when unknown.
  unsigned opIndex(const std::string &OpName) const;

  /// Classifies the (Op1, Op2, Slot) condition. On Verdict::Program,
  /// *ProgOut points at the program to run.
  Verdict classify(unsigned Op1, unsigned Op2, unsigned Slot,
                   const IndexProgram **ProgOut) const {
    unsigned PS = (Op1 * NumOps + Op2) * NumSlotsPerPair + Slot;
    if (ConstMask[PS >> 6] & (uint64_t(1) << (PS & 63)))
      return (ConstVal[PS >> 6] & (uint64_t(1) << (PS & 63)))
                 ? Verdict::ConstTrue
                 : Verdict::ConstFalse;
    int32_t P = ProgOf[PS];
    if (P < 0)
      return Verdict::Unsupported;
    *ProgOut = &Programs[P];
    return Verdict::Program;
  }

  /// The program of a non-constant slot, or nullptr.
  const IndexProgram *program(unsigned Op1, unsigned Op2,
                              unsigned Slot) const {
    const IndexProgram *P = nullptr;
    return classify(Op1, Op2, Slot, &P) == Verdict::Program ? P : nullptr;
  }

  /// Raw dispatch tables, for callers that cache them in a pre-resolved
  /// handle (runtime/IndexedChecker::PairHandle) so a constant-bitmap hit
  /// inlines to two loads and a bit test. Stable for the index's lifetime.
  const uint64_t *constMaskWords() const { return ConstMask.data(); }
  const uint64_t *constValWords() const { return ConstVal.data(); }
  const int32_t *progOfTable() const { return ProgOf.data(); }
  const IndexProgram *programTable() const { return Programs.data(); }

  friend bool operator==(const FamilyIndex &X, const FamilyIndex &Y) {
    return X.Name == Y.Name && X.NumOps == Y.NumOps &&
           X.NumStructures == Y.NumStructures && X.ProgOf == Y.ProgOf &&
           X.ConstMask == Y.ConstMask && X.ConstVal == Y.ConstVal &&
           X.Programs == Y.Programs;
  }

private:
  friend class CommutativityIndex;

  std::string Name;
  const Family *Fam = nullptr; ///< Rebound by name on parse().
  unsigned NumOps = 0;
  unsigned NumStructures = 0;
  unsigned MaxRegs = 0;
  /// (op1 * NumOps + op2) * NumSlotsPerPair + slot -> program id, or -1
  /// for constant / unsupported slots.
  std::vector<int32_t> ProgOf;
  /// Packed constant bitmaps over the same pair x slot index space.
  std::vector<uint64_t> ConstMask, ConstVal;
  std::vector<IndexProgram> Programs;
};

/// Aggregate compilation statistics.
struct IndexStats {
  unsigned TotalSlots = 0;      ///< pairs x NumSlotsPerPair over all families.
  unsigned Programs = 0;        ///< Slots lowered to bytecode.
  unsigned Constants = 0;       ///< Slots resolved by the constant bitmap.
  unsigned Fallbacks = 0;       ///< Slots left to the interpreter.
  unsigned MaxRegs = 0;         ///< Largest register file any program needs.
  unsigned TotalInstructions = 0;
  /// Paper-counted exact conditions covered (765 for the full catalog:
  /// 3 kinds per pair, counted once per implementing structure).
  unsigned PaperConditions = 0;

  double constantFraction() const {
    return TotalSlots ? double(Constants) / double(TotalSlots) : 0.0;
  }
};

/// The whole-catalog compiled index. Immutable after compile()/parse(),
/// so one instance may be shared read-only across any number of threads;
/// per-thread mutable state (the VM register file) lives in IndexVM.
class CommutativityIndex {
public:
  /// Compiles every condition of \p C (all families, all four slots).
  static CommutativityIndex compile(const Catalog &C);

  /// The compiled family image, or nullptr for an unknown family.
  const FamilyIndex *familyIndex(const Family &Fam) const {
    for (const FamilyIndex &FI : Families)
      if (FI.Fam == &Fam)
        return &FI;
    return nullptr;
  }

  const std::vector<FamilyIndex> &families() const { return Families; }

  IndexStats stats() const;

  /// Versioned text image; exact round-trip through parse().
  std::string serialize() const;

  /// Reloads a serialized image, rebinding each family singleton by name.
  /// Returns nullopt on any structural error (truncation, bad counts,
  /// unknown opcode or family).
  static std::optional<CommutativityIndex> parse(const std::string &Image);

  friend bool operator==(const CommutativityIndex &X,
                         const CommutativityIndex &Y) {
    return X.Families == Y.Families;
  }

private:
  std::vector<FamilyIndex> Families; ///< In allFamilies() order.
};

} // namespace index
} // namespace semcomm

#endif // SEMCOMM_INDEX_COMMUTATIVITYINDEX_H
