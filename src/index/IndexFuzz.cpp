//===- index/IndexFuzz.cpp - Index vs. interpreter cross-check ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "index/IndexFuzz.h"

#include "index/IndexVM.h"
#include "logic/Evaluator.h"
#include "logic/Simplifier.h"
#include "spec/AbstractState.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <mutex>
#include <sstream>

using namespace semcomm;
using namespace semcomm::index;

namespace {

/// splitmix64: a counter-based generator, so every (condition, trial) gets
/// an independent stream and the sweep is deterministic under any thread
/// count.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() { return State = mix64(State); }
  /// Uniform in [0, Bound).
  uint64_t below(uint64_t Bound) { return next() % Bound; }
};

/// A sort-correct random scalar. Object identities and integers stay in a
/// small range so equalities, guards, and probes hit both outcomes often.
Value randomValue(Rng &R, Sort S) {
  switch (S) {
  case Sort::Bool:
    return Value::boolean(R.below(2) != 0);
  case Sort::Int:
    return Value::integer(static_cast<int64_t>(R.below(8)) - 2);
  case Sort::Obj:
    return R.below(8) == 0 ? Value::null()
                           : Value::obj(static_cast<int64_t>(R.below(5)));
  case Sort::State:
    break;
  }
  return Value::undef(); // Unreachable for argument/return sorts.
}

/// One ordered pair's cross-check work: all four slots, TrialsPerCondition
/// environments each.
struct PairJob {
  const FamilyIndex *FI;
  const ConditionEntry *Entry;
  ExprRef Conservative; ///< Precomputed s1-free between dialect.
  const std::vector<AbstractState> *States;
  uint64_t StreamBase; ///< Seed material unique to this pair.
};

} // namespace

FuzzReport semcomm::index::crossCheck(const Catalog &C,
                                      const CommutativityIndex &Idx,
                                      uint64_t Seed,
                                      unsigned TrialsPerCondition,
                                      unsigned NumThreads) {
  // Precompute everything that touches the shared ExprFactory serially:
  // dropS1Disjuncts interns new nodes, and the factory is not thread-safe.
  std::vector<PairJob> Jobs;
  std::vector<std::vector<AbstractState>> StatePools;
  StatePools.reserve(allFamilies().size());
  Scope S;
  for (const Family *Fam : allFamilies())
    StatePools.push_back(enumerateStates(*Fam, S));

  unsigned FamIdx = 0;
  for (const Family *Fam : allFamilies()) {
    const FamilyIndex *FI = Idx.familyIndex(*Fam);
    if (FI) {
      for (const ConditionEntry &E : C.entries(*Fam))
        Jobs.push_back({FI, &E, dropS1Disjuncts(C.factory(), E.Between),
                        &StatePools[FamIdx],
                        mix64(Seed ^ (uint64_t(FamIdx) << 32) ^
                              (uint64_t(E.Op1) << 16) ^ E.Op2)});
    }
    ++FamIdx;
  }

  FuzzReport Report;
  std::atomic<uint64_t> Trials{0}, Programs{0}, Constants{0}, Unsupported{0},
      Mismatches{0};
  std::mutex DiagMutex;
  std::vector<std::string> Diags;
  unsigned MaxRegs = Idx.stats().MaxRegs;

  ThreadPool::parallelFor(Jobs.size(), NumThreads, [&](size_t JobIdx) {
    const PairJob &Job = Jobs[JobIdx];
    const ConditionEntry &E = *Job.Entry;
    const Operation &Op1 = E.op1();
    const Operation &Op2 = E.op2();
    ExprRef Phis[NumSlotsPerPair] = {E.Before, E.Between, E.After,
                                     Job.Conservative};
    IndexVM VM(MaxRegs);
    Value Args[MaxArgSlots];
    unsigned N1 = static_cast<unsigned>(Op1.ArgSorts.size());
    unsigned N2 = static_cast<unsigned>(Op2.ArgSorts.size());

    for (unsigned Slot = 0; Slot != NumSlotsPerPair; ++Slot) {
      const IndexProgram *Prog = nullptr;
      Verdict V = Job.FI->classify(E.Op1, E.Op2, Slot, &Prog);
      if (V == Verdict::Unsupported) {
        Unsupported.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      for (unsigned Trial = 0; Trial != TrialsPerCondition; ++Trial) {
        Rng R(mix64(Job.StreamBase ^ (uint64_t(Slot) << 48) ^ Trial));

        // Sort-correct random arguments and return values...
        Env Interp;
        for (unsigned I = 0; I != N1; ++I) {
          Args[I] = randomValue(R, Op1.ArgSorts[I]);
          Interp.bind(Op1.ArgBaseNames[I] + "1", Args[I]);
        }
        for (unsigned I = 0; I != N2; ++I) {
          Args[N1 + I] = randomValue(R, Op2.ArgSorts[I]);
          Interp.bind(Op2.ArgBaseNames[I] + "2", Args[N1 + I]);
        }
        Args[N1 + N2] = randomValue(R, Op1.ReturnSort);
        Args[N1 + N2 + 1] = randomValue(R, Op2.ReturnSort);
        Interp.bind("r1", Args[N1 + N2]);
        Interp.bind("r2", Args[N1 + N2 + 1]);

        // ...and three independent random abstract states.
        const std::vector<AbstractState> &Pool = *Job.States;
        const AbstractState &S1 = Pool[R.below(Pool.size())];
        const AbstractState &S2 = Pool[R.below(Pool.size())];
        const AbstractState &S3 = Pool[R.below(Pool.size())];
        Interp.bindState("s1", &S1);
        Interp.bindState("s2", &S2);
        Interp.bindState("s3", &S3);
        const StateView *Views[NumStateSlots] = {&S1, &S2, &S3};

        bool Expected = evaluateBool(Phis[Slot], Interp);
        bool Got;
        if (V == Verdict::Program) {
          Got = VM.runBool(*Prog, Args, Views);
          Programs.fetch_add(1, std::memory_order_relaxed);
        } else {
          Got = V == Verdict::ConstTrue;
          Constants.fetch_add(1, std::memory_order_relaxed);
        }
        Trials.fetch_add(1, std::memory_order_relaxed);

        if (Got != Expected) {
          Mismatches.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> Lock(DiagMutex);
          if (Diags.size() < 8) {
            std::ostringstream Msg;
            Msg << Job.FI->familyName() << " " << E.pairName() << " "
                << slotName(Slot) << " trial " << Trial << ": interpreter="
                << (Expected ? "true" : "false")
                << " index=" << (Got ? "true" : "false") << " (s1=" << S1.str()
                << " s2=" << S2.str() << " s3=" << S3.str() << ")";
            Diags.push_back(Msg.str());
          }
        }
      }
    }
  });

  Report.Trials = Trials.load();
  Report.ProgramsChecked = Programs.load();
  Report.ConstantsChecked = Constants.load();
  Report.UnsupportedSlots = Unsupported.load();
  Report.Mismatches = Mismatches.load();
  Report.Diagnostics = std::move(Diags);
  return Report;
}
