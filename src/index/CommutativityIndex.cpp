//===- index/CommutativityIndex.cpp - Compiled condition index ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "index/CommutativityIndex.h"

#include "logic/Simplifier.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

using namespace semcomm;
using namespace semcomm::index;

const char *semcomm::index::slotName(unsigned Slot) {
  switch (Slot) {
  case SlotBefore:
    return "before";
  case SlotBetween:
    return "between";
  case SlotAfter:
    return "after";
  case SlotBetweenConservative:
    return "between-conservative";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Compilation: Expr DAG -> SSA bytecode.
//===----------------------------------------------------------------------===//

namespace {

/// Lowers one condition expression. Shared subterms compile once (the
/// memo maps DAG nodes to registers), n-ary And/Or fold into binary
/// chains, and Ite becomes a branch-free select. Unsupported shapes
/// (quantifiers, names outside the argument layout) poison the whole
/// program, which then falls back to the interpreter at query time.
class ProgramCompiler {
public:
  ProgramCompiler(const Operation &Op1, const Operation &Op2) {
    // Argument-atom bank layout: op1 args, op2 args, r1, r2.
    unsigned Slot = 0;
    for (const std::string &Base : Op1.ArgBaseNames)
      ArgSlots[Base + "1"] = Slot++;
    for (const std::string &Base : Op2.ArgBaseNames)
      ArgSlots[Base + "2"] = Slot++;
    ArgSlots["r1"] = Slot++;
    ArgSlots["r2"] = Slot++;
    assert(Slot <= MaxArgSlots && "argument bank overflow");
  }

  /// Compiles \p E; returns false if any subterm is outside the fragment.
  bool compile(ExprRef E, IndexProgram &Out) {
    Prog = &Out;
    Out.Code.clear();
    Memo.clear();
    Failed = false;
    unsigned Root = lower(E);
    if (Failed)
      return false;
    // A bare argument atom lowers to a direct operand, not a register;
    // materialize it so the program has a result register.
    if (Root & OperandArgBit)
      Root = emit({IOpcode::LoadArg, 0, uint16_t(Root & OperandIndexMask), 0,
                   0, 0});
    // The DAG memo can make the root an interior register (e.g. when the
    // root was already emitted as a shared subterm); the VM returns the
    // last register, so re-emit a move-equivalent only when needed.
    if (Root != Out.numRegs() - 1) {
      // Duplicate via a no-op boolean identity: Or(root, root) keeps the
      // program branch-free and total.
      emit({IOpcode::Or, 0, uint16_t(Root), uint16_t(Root), 0, 0});
    }
    // The VM's register file is a fixed inline array; a program too large
    // for it falls back to the interpreter like any other unsupported
    // shape (the shipped catalog peaks at 19 registers).
    return Out.numRegs() <= MaxVMRegs;
  }

private:
  unsigned emit(IInstr I) {
    Prog->Code.push_back(I);
    return Prog->numRegs() - 1;
  }

  unsigned fail() {
    Failed = true;
    return 0;
  }

  /// The state slot of a probe's state operand, or NumStateSlots on error.
  unsigned stateSlot(ExprRef S) {
    if (S->kind() != ExprKind::Var || S->sort() != Sort::State)
      return NumStateSlots;
    if (S->name() == "s1")
      return StateSlotS1;
    if (S->name() == "s2")
      return StateSlotS2;
    if (S->name() == "s3")
      return StateSlotS3;
    return NumStateSlots;
  }

  unsigned lower(ExprRef E) {
    if (Failed)
      return 0;
    auto It = Memo.find(E);
    if (It != Memo.end())
      return It->second;
    unsigned Reg = lowerUncached(E);
    Memo[E] = Reg;
    return Reg;
  }

  unsigned lowerBin(IOpcode Op, ExprRef E) {
    uint16_t A = uint16_t(lower(E->operand(0)));
    uint16_t B = uint16_t(lower(E->operand(1)));
    return emit({Op, 0, A, B, 0, 0});
  }

  unsigned lowerProbe(IOpcode Op, ExprRef E, bool HasArg) {
    unsigned St = stateSlot(E->operand(0));
    if (St == NumStateSlots)
      return fail();
    uint16_t A = HasArg ? uint16_t(lower(E->operand(1))) : uint16_t(0);
    return emit({Op, uint8_t(St), A, 0, 0, 0});
  }

  unsigned lowerUncached(ExprRef E) {
    switch (E->kind()) {
    case ExprKind::ConstBool:
      return emit({IOpcode::ConstBool, 0, 0, 0, 0, E->boolValue() ? 1 : 0});
    case ExprKind::ConstInt:
      return emit({IOpcode::ConstInt, 0, 0, 0, 0, E->intValue()});
    case ExprKind::ConstNull:
      return emit({IOpcode::ConstNull, 0, 0, 0, 0, 0});
    case ExprKind::Var: {
      if (E->sort() == Sort::State)
        return fail(); // State vars are only valid inside probes.
      auto It = ArgSlots.find(E->name());
      if (It == ArgSlots.end())
        return fail();
      // No instruction at all: argument atoms become direct operands of
      // their consumers (OperandArgBit), erasing the LoadArg shuffle.
      return OperandArgBit | It->second;
    }

    case ExprKind::Add:
      return lowerBin(IOpcode::Add, E);
    case ExprKind::Sub:
      return lowerBin(IOpcode::Sub, E);
    case ExprKind::Neg:
      return emit({IOpcode::Neg, 0, uint16_t(lower(E->operand(0))), 0, 0, 0});

    case ExprKind::Eq:
      return lowerBin(IOpcode::Eq, E);
    case ExprKind::Lt:
      return lowerBin(IOpcode::Lt, E);
    case ExprKind::Le:
      return lowerBin(IOpcode::Le, E);

    case ExprKind::Not:
      // Peephole: !(a = b) fuses into one Ne instruction. Disequality
      // guards dominate the catalog (nearly every between condition opens
      // with v1 != v2), so this shortens most hot programs.
      if (E->operand(0)->kind() == ExprKind::Eq)
        return lowerBin(IOpcode::Ne, E->operand(0));
      return emit({IOpcode::Not, 0, uint16_t(lower(E->operand(0))), 0, 0, 0});
    case ExprKind::And:
    case ExprKind::Or: {
      IOpcode Op = E->kind() == ExprKind::And ? IOpcode::And : IOpcode::Or;
      unsigned Acc = lower(E->operand(0));
      for (unsigned I = 1; I != E->numOperands(); ++I) {
        ExprRef Term = E->operand(I);
        // Peephole: x | !y is Implies(y, x) — one instruction instead of
        // a Not plus an Or. Total evaluation makes the reordering sound.
        if (Op == IOpcode::Or && Term->kind() == ExprKind::Not &&
            Term->operand(0)->kind() != ExprKind::Eq) {
          uint16_t Y = uint16_t(lower(Term->operand(0)));
          Acc = emit({IOpcode::Implies, 0, Y, uint16_t(Acc), 0, 0});
          continue;
        }
        uint16_t Next = uint16_t(lower(Term));
        Acc = emit({Op, 0, uint16_t(Acc), Next, 0, 0});
      }
      return Acc;
    }
    case ExprKind::Implies:
      return lowerBin(IOpcode::Implies, E);
    case ExprKind::Iff:
      return lowerBin(IOpcode::Iff, E);
    case ExprKind::Ite: {
      uint16_t C = uint16_t(lower(E->operand(0)));
      uint16_t T = uint16_t(lower(E->operand(1)));
      uint16_t F = uint16_t(lower(E->operand(2)));
      return emit({IOpcode::Select, 0, C, T, F, 0});
    }

    case ExprKind::SetContains:
      return lowerProbe(IOpcode::SetContains, E, true);
    case ExprKind::MapGet:
      return lowerProbe(IOpcode::MapGet, E, true);
    case ExprKind::MapHasKey:
      return lowerProbe(IOpcode::MapHasKey, E, true);
    case ExprKind::SeqAt:
      return lowerProbe(IOpcode::SeqAt, E, true);
    case ExprKind::SeqLen:
      return lowerProbe(IOpcode::SeqLen, E, false);
    case ExprKind::SeqIndexOf:
      return lowerProbe(IOpcode::SeqIndexOf, E, true);
    case ExprKind::SeqLastIndexOf:
      return lowerProbe(IOpcode::SeqLastIndexOf, E, true);
    case ExprKind::StateSize:
      return lowerProbe(IOpcode::StateSize, E, false);
    case ExprKind::CounterValue:
      return lowerProbe(IOpcode::CounterValue, E, false);

    case ExprKind::Forall:
    case ExprKind::Exists:
      // Dynamic-bound quantifiers are outside the branch-free fragment;
      // the shipped catalog never uses them (pinned by IndexTest).
      return fail();
    }
    return fail();
  }

  IndexProgram *Prog = nullptr;
  bool Failed = false;
  std::map<std::string, unsigned> ArgSlots;
  std::map<ExprRef, unsigned> Memo;
};

void setBit(std::vector<uint64_t> &Words, unsigned Bit, bool B) {
  if (B)
    Words[Bit >> 6] |= uint64_t(1) << (Bit & 63);
}

} // namespace

CommutativityIndex CommutativityIndex::compile(const Catalog &C) {
  CommutativityIndex Idx;
  ExprFactory &F = C.factory();
  for (const Family *Fam : allFamilies()) {
    FamilyIndex FI;
    FI.Name = Fam->Name;
    FI.Fam = Fam;
    FI.NumOps = static_cast<unsigned>(Fam->Ops.size());
    FI.NumStructures = static_cast<unsigned>(Fam->StructureNames.size());
    unsigned NumPairSlots = FI.NumOps * FI.NumOps * NumSlotsPerPair;
    FI.ProgOf.assign(NumPairSlots, -1);
    FI.ConstMask.assign((NumPairSlots + 63) / 64, 0);
    FI.ConstVal.assign((NumPairSlots + 63) / 64, 0);

    for (const ConditionEntry &E : C.entries(*Fam)) {
      ExprRef Phis[NumSlotsPerPair] = {
          E.Before, E.Between, E.After, dropS1Disjuncts(F, E.Between)};
      ProgramCompiler PC(E.op1(), E.op2());
      for (unsigned Slot = 0; Slot != NumSlotsPerPair; ++Slot) {
        unsigned PS = (E.Op1 * FI.NumOps + E.Op2) * NumSlotsPerPair + Slot;
        ExprRef Phi = Phis[Slot];
        if (Phi->kind() == ExprKind::ConstBool) {
          setBit(FI.ConstMask, PS, true);
          setBit(FI.ConstVal, PS, Phi->boolValue());
          continue;
        }
        IndexProgram P;
        if (!PC.compile(Phi, P))
          continue; // Unsupported: ProgOf stays -1, bitmap stays clear.
        FI.MaxRegs = std::max(FI.MaxRegs, P.numRegs());
        FI.ProgOf[PS] = static_cast<int32_t>(FI.Programs.size());
        FI.Programs.push_back(std::move(P));
      }
    }
    Idx.Families.push_back(std::move(FI));
  }
  return Idx;
}

unsigned FamilyIndex::opIndex(const std::string &OpName) const {
  for (unsigned I = 0; I != NumOps; ++I)
    if (Fam->Ops[I].Name == OpName)
      return I;
  return NumOps;
}

IndexStats CommutativityIndex::stats() const {
  IndexStats S;
  for (const FamilyIndex &FI : Families) {
    unsigned NumPairSlots = FI.NumOps * FI.NumOps * NumSlotsPerPair;
    S.TotalSlots += NumPairSlots;
    S.Programs += FI.numPrograms();
    S.MaxRegs = std::max(S.MaxRegs, FI.MaxRegs);
    for (const IndexProgram &P : FI.Programs)
      S.TotalInstructions += P.numRegs();
    for (unsigned PS = 0; PS != NumPairSlots; ++PS)
      if (FI.ConstMask[PS >> 6] & (uint64_t(1) << (PS & 63)))
        ++S.Constants;
    // Paper counting: 3 exact conditions per ordered pair, once per
    // implementing structure (the conservative dialect is a derived
    // fourth slot, not a catalog condition).
    S.PaperConditions += 3 * FI.NumOps * FI.NumOps * FI.NumStructures;
  }
  S.Fallbacks = S.TotalSlots - S.Programs - S.Constants;
  return S;
}

//===----------------------------------------------------------------------===//
// Serialization: versioned, line-oriented text image.
//===----------------------------------------------------------------------===//

std::string CommutativityIndex::serialize() const {
  std::ostringstream Out;
  Out << "SEMCOMM-INDEX 1\n";
  Out << "families " << Families.size() << "\n";
  for (const FamilyIndex &FI : Families) {
    Out << "family " << FI.Name << " ops " << FI.NumOps << " structures "
        << FI.NumStructures << " maxregs " << FI.MaxRegs << " programs "
        << FI.Programs.size() << "\n";
    auto EmitWords = [&Out](const char *Tag,
                            const std::vector<uint64_t> &Words) {
      Out << Tag << " " << Words.size();
      for (uint64_t W : Words)
        Out << " " << W;
      Out << "\n";
    };
    EmitWords("constmask", FI.ConstMask);
    EmitWords("constval", FI.ConstVal);
    Out << "progof " << FI.ProgOf.size();
    for (int32_t P : FI.ProgOf)
      Out << " " << P;
    Out << "\n";
    for (const IndexProgram &P : FI.Programs) {
      Out << "prog " << P.Code.size() << "\n";
      for (const IInstr &I : P.Code)
        Out << unsigned(I.Op) << " " << unsigned(I.St) << " " << I.A << " "
            << I.B << " " << I.C << " " << I.Imm << "\n";
    }
  }
  Out << "end\n";
  return Out.str();
}

std::optional<CommutativityIndex>
CommutativityIndex::parse(const std::string &Image) {
  std::istringstream In(Image);
  std::string Tok;
  unsigned Version = 0;
  if (!(In >> Tok >> Version) || Tok != "SEMCOMM-INDEX" || Version != 1)
    return std::nullopt;
  size_t NumFamilies = 0;
  if (!(In >> Tok >> NumFamilies) || Tok != "families")
    return std::nullopt;

  CommutativityIndex Idx;
  for (size_t FIdx = 0; FIdx != NumFamilies; ++FIdx) {
    FamilyIndex FI;
    size_t NumProgs = 0;
    std::string KwOps, KwStructs, KwRegs, KwProgs;
    if (!(In >> Tok >> FI.Name >> KwOps >> FI.NumOps >> KwStructs >>
          FI.NumStructures >> KwRegs >> FI.MaxRegs >> KwProgs >> NumProgs) ||
        Tok != "family" || KwOps != "ops" || KwStructs != "structures" ||
        KwRegs != "maxregs" || KwProgs != "programs")
      return std::nullopt;
    for (const Family *Fam : allFamilies())
      if (Fam->Name == FI.Name)
        FI.Fam = Fam;
    if (!FI.Fam || FI.Fam->Ops.size() != FI.NumOps)
      return std::nullopt;

    unsigned NumPairSlots = FI.NumOps * FI.NumOps * NumSlotsPerPair;
    auto ReadWords = [&](const char *Key, std::vector<uint64_t> &Words) {
      size_t N = 0;
      if (!(In >> Tok >> N) || Tok != Key || N != (NumPairSlots + 63) / 64)
        return false;
      Words.resize(N);
      for (uint64_t &W : Words)
        if (!(In >> W))
          return false;
      return true;
    };
    if (!ReadWords("constmask", FI.ConstMask) ||
        !ReadWords("constval", FI.ConstVal))
      return std::nullopt;

    size_t NumProgOf = 0;
    if (!(In >> Tok >> NumProgOf) || Tok != "progof" ||
        NumProgOf != NumPairSlots)
      return std::nullopt;
    FI.ProgOf.resize(NumProgOf);
    for (int32_t &P : FI.ProgOf) {
      if (!(In >> P) || P >= static_cast<int32_t>(NumProgs))
        return std::nullopt;
    }

    for (size_t PIdx = 0; PIdx != NumProgs; ++PIdx) {
      size_t NumInstr = 0;
      if (!(In >> Tok >> NumInstr) || Tok != "prog" || NumInstr == 0 ||
          NumInstr > MaxVMRegs)
        return std::nullopt;
      IndexProgram P;
      P.Code.resize(NumInstr);
      for (size_t Pos = 0; Pos != NumInstr; ++Pos) {
        IInstr &I = P.Code[Pos];
        unsigned Op = 0, St = 0;
        if (!(In >> Op >> St >> I.A >> I.B >> I.C >> I.Imm) ||
            Op >= NumIOpcodes || St >= NumStateSlots)
          return std::nullopt;
        I.Op = static_cast<IOpcode>(Op);
        I.St = static_cast<uint8_t>(St);
        // Operand validation: a register operand must name an earlier
        // instruction (dependency order), a direct argument operand must
        // be inside the bank. How many operand fields an opcode actually
        // reads decides which fields are checked.
        auto ValidTok = [Pos](uint16_t T) {
          return (T & OperandArgBit) ? (T & OperandIndexMask) < MaxArgSlots
                                     : T < Pos;
        };
        unsigned Arity = 0;
        switch (I.Op) {
        case IOpcode::ConstBool:
        case IOpcode::ConstInt:
        case IOpcode::ConstNull:
        case IOpcode::SeqLen:
        case IOpcode::StateSize:
        case IOpcode::CounterValue:
          Arity = 0;
          break;
        case IOpcode::LoadArg:
          if (I.A >= MaxArgSlots)
            return std::nullopt;
          Arity = 0;
          break;
        case IOpcode::Neg:
        case IOpcode::Not:
        case IOpcode::SetContains:
        case IOpcode::MapGet:
        case IOpcode::MapHasKey:
        case IOpcode::SeqAt:
        case IOpcode::SeqIndexOf:
        case IOpcode::SeqLastIndexOf:
          Arity = 1;
          break;
        case IOpcode::Select:
          Arity = 3;
          break;
        default: // All binary arithmetic, comparison, and connectives.
          Arity = 2;
          break;
        }
        if ((Arity >= 1 && !ValidTok(I.A)) ||
            (Arity >= 2 && !ValidTok(I.B)) || (Arity >= 3 && !ValidTok(I.C)))
          return std::nullopt;
      }
      FI.MaxRegs = std::max(FI.MaxRegs, P.numRegs());
      FI.Programs.push_back(std::move(P));
    }
    Idx.Families.push_back(std::move(FI));
  }
  if (!(In >> Tok) || Tok != "end")
    return std::nullopt;
  return Idx;
}
