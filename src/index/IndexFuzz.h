//===- index/IndexFuzz.h - Index vs. interpreter cross-check ----*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential fuzzing of the compiled commutativity index against the
/// reference tree interpreter (logic/Evaluator): for every ordered pair x
/// slot of every family, both evaluators run the same randomly generated
/// environments (sort-correct arguments and return values, abstract states
/// drawn from the exhaustive enumeration) and must agree bit-for-bit.
/// Constant-bitmap slots are checked the same way, pinning the bitmap
/// against the interpreter too. This is how the index inherits the
/// catalog's verified status — the compiler is never trusted, only
/// cross-checked.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_INDEX_INDEXFUZZ_H
#define SEMCOMM_INDEX_INDEXFUZZ_H

#include "index/CommutativityIndex.h"

#include <cstdint>
#include <string>
#include <vector>

namespace semcomm {
namespace index {

/// Outcome of one crossCheck() sweep.
struct FuzzReport {
  uint64_t Trials = 0;           ///< Environments evaluated (both paths).
  uint64_t ProgramsChecked = 0;  ///< Trials resolved by compiled programs.
  uint64_t ConstantsChecked = 0; ///< Trials resolved by the constant bitmap.
  uint64_t UnsupportedSlots = 0; ///< Pair x slot entries with no program.
  uint64_t Mismatches = 0;       ///< Disagreements (must be zero).
  /// Up to eight human-readable diagnostics for the first mismatches.
  std::vector<std::string> Diagnostics;

  bool clean() const { return Mismatches == 0 && UnsupportedSlots == 0; }
};

/// Runs \p TrialsPerCondition random environments through every (pair,
/// slot) of every family, comparing \p Idx against the interpreter on
/// \p C's conditions. Deterministic in \p Seed regardless of \p NumThreads
/// (each condition derives its own counter-based RNG stream).
FuzzReport crossCheck(const Catalog &C, const CommutativityIndex &Idx,
                      uint64_t Seed, unsigned TrialsPerCondition,
                      unsigned NumThreads);

} // namespace index
} // namespace semcomm

#endif // SEMCOMM_INDEX_INDEXFUZZ_H
