//===- index/IndexProgram.h - Branch-free condition bytecode ----*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluable form the commutativity index compiles verified conditions
/// into: a flattened ITE/DAG bytecode program for a small register machine.
/// Each instruction writes exactly one register (SSA over the expression
/// DAG, so shared subterms evaluate once); there are no branches — And/Or
/// lower to binary boolean instructions and Ite to a select — so a program
/// executes in a fixed number of steps regardless of the data.
///
/// Inputs come from two banks:
///  * argument atoms — a fixed slot layout over the two operations'
///    actual arguments and recorded return values (op1 args, then op2
///    args, then r1, then r2), and
///  * abstract-state probes — contains/indexOf-style reads against the
///    StateViews bound to the s1/s2/s3 slots (the live structure at run
///    time).
///
/// Soundness of branch-free evaluation: the interpreter (logic/Evaluator)
/// short-circuits And/Or left-to-right, which the paper's guarded-access
/// idiom relies on. Full evaluation is nevertheless equivalent over the
/// catalog's vocabulary because every probe is total — an out-of-range
/// seqAt yields Undef and a missed mapGet yields null, both Obj-sorted
/// values that only ever flow into the totalizing Eq atom (Undef equals
/// nothing). Integer and boolean operands are produced only by total
/// operators, so no instruction can fault; the compiled program computes
/// exactly the value the interpreter would. The fuzz cross-check
/// (IndexFuzz.h) pins this argument on every compiled condition.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_INDEX_INDEXPROGRAM_H
#define SEMCOMM_INDEX_INDEXPROGRAM_H

#include <cstdint>
#include <vector>

namespace semcomm {
namespace index {

/// Register-machine opcodes. Operand registers are named A/B/C; St is the
/// state slot (0=s1, 1=s2, 2=s3) of a probe; Imm carries constant payloads.
enum class IOpcode : uint8_t {
  // Leaves.
  ConstBool, ///< reg = Imm != 0
  ConstInt,  ///< reg = Imm
  ConstNull, ///< reg = null
  LoadArg,   ///< reg = args[A] (argument-atom bank)

  // Integer terms.
  Add, ///< reg = r[A] + r[B]
  Sub, ///< reg = r[A] - r[B]
  Neg, ///< reg = -r[A]

  // Atoms.
  Eq, ///< reg = r[A] = r[B] (semantic equality; Undef equals nothing)
  Ne, ///< reg = !(r[A] = r[B]) (fused Not(Eq); Undef differs from all)
  Lt, ///< reg = r[A] < r[B]
  Le, ///< reg = r[A] <= r[B]

  // Boolean connectives (n-ary And/Or are lowered to binary chains).
  Not,     ///< reg = !r[A]
  And,     ///< reg = r[A] && r[B]
  Or,      ///< reg = r[A] || r[B]
  Implies, ///< reg = !r[A] || r[B]
  Iff,     ///< reg = r[A] == r[B]
  Select,  ///< reg = r[A] ? r[B] : r[C]

  // Abstract-state probes against the StateView in slot St.
  SetContains,    ///< reg = states[St]->contains(r[A])
  MapGet,         ///< reg = states[St]->mapGet(r[A])
  MapHasKey,      ///< reg = states[St]->mapHasKey(r[A])
  SeqAt,          ///< reg = states[St]->seqAt(r[A])
  SeqLen,         ///< reg = states[St]->seqLen()
  SeqIndexOf,     ///< reg = states[St]->seqIndexOf(r[A])
  SeqLastIndexOf, ///< reg = states[St]->seqLastIndexOf(r[A])
  StateSize,      ///< reg = states[St]->size()
  CounterValue,   ///< reg = states[St]->counter()
};

/// Number of distinct opcodes (serialization bound check).
constexpr unsigned NumIOpcodes =
    static_cast<unsigned>(IOpcode::CounterValue) + 1;

/// Operand encoding: a value operand (the A/B/C field of every opcode
/// except LoadArg, whose A is a plain bank slot) either names a register
/// (bit 15 clear: an earlier instruction's result) or reads the argument
/// bank directly (bit 15 set: bank slot in the low bits). Direct argument
/// operands are how the compiler erases the LoadArg shuffle from the hot
/// programs — most conditions are a couple of connectives over argument
/// atoms, so the loads would otherwise outnumber the real work.
constexpr uint16_t OperandArgBit = 0x8000;
constexpr uint16_t OperandIndexMask = 0x7fff;

/// One instruction. Instruction i writes register i; programs are in
/// dependency order, so a linear sweep evaluates the DAG bottom-up.
struct IInstr {
  IOpcode Op = IOpcode::ConstBool;
  uint8_t St = 0;         ///< State slot of a probe (0=s1, 1=s2, 2=s3).
  uint16_t A = 0, B = 0, C = 0; ///< Operands (see OperandArgBit encoding).
  int64_t Imm = 0;        ///< ConstBool / ConstInt payload.

  friend bool operator==(const IInstr &X, const IInstr &Y) {
    return X.Op == Y.Op && X.St == Y.St && X.A == Y.A && X.B == Y.B &&
           X.C == Y.C && X.Imm == Y.Imm;
  }
};

/// A compiled condition: straight-line code whose last register is the
/// Bool-sorted result.
struct IndexProgram {
  std::vector<IInstr> Code;

  unsigned numRegs() const { return static_cast<unsigned>(Code.size()); }

  friend bool operator==(const IndexProgram &X, const IndexProgram &Y) {
    return X.Code == Y.Code;
  }
};

/// Argument-atom bank layout: op1's arguments occupy slots
/// [0, numArgs1), op2's occupy [numArgs1, numArgs1+numArgs2), then r1 and
/// r2. No catalog operation takes more than two arguments, so the bank is
/// a small fixed-size stack array at every query site.
constexpr unsigned MaxArgSlots = 8;

/// Register-file ceiling. One register per instruction (SSA), so this
/// bounds program length too; the shipped catalog's largest program uses
/// 19. A fixed ceiling lets the VM keep its register file inline — at a
/// compile-time offset from everything else it touches — instead of
/// behind a heap pointer whose placement varies run to run. The compiler
/// falls back to the interpreter for any condition that would exceed it,
/// and parse() rejects longer programs.
constexpr unsigned MaxVMRegs = 64;

/// State-slot indices of the probe bank.
constexpr unsigned StateSlotS1 = 0, StateSlotS2 = 1, StateSlotS3 = 2,
                   NumStateSlots = 3;

} // namespace index
} // namespace semcomm

#endif // SEMCOMM_INDEX_INDEXPROGRAM_H
